// The transposed algebraic dynamic SpGEMM (Section V-C): maintaining
// C = A^T B under updates of either operand matches a from-scratch
// recomputation, across grid sizes; plus the chained-contraction identity.
#include <gtest/gtest.h>

#include <random>

#include "common/grid_shapes.hpp"
#include "core/dynamic_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::build_dynamic_matrix;
using core::build_update_matrix;
using core::DistDcsr;
using core::DistDynamicMatrix;
using core::dynamic_spgemm_algebraic;
using core::dynamic_spgemm_algebraic_transA;
using core::ProcessGrid;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::PlusTimes;
using sparse::Triple;
using test::as_map;
using test::CoordMap;
using test::random_triples;
using test::reference_add;
using dsg::test::GridCase;

/// Reference C = A^T B from coordinate maps.
CoordMap reference_transposed(const CoordMap& a, const CoordMap& b) {
    CoordMap out;
    for (const auto& [ca, va] : a)
        for (const auto& [cb, vb] : b) {
            if (ca.first != cb.first) continue;  // shared inner row
            out[{ca.second, cb.second}] += va * vb;
        }
    return out;
}

class TransAP : public ::testing::TestWithParam<GridCase> {};

TEST_P(TransAP, UpdatesOfLeftOperandMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(700);
        const index_t inner = 24, n = 20, m = 22;
        auto ta = random_triples(rng, inner, n, 120);
        auto tb = random_triples(rng, inner, m, 120);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, inner, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, inner, m, feed(tb));
        // Initial C = A^T B via untransposed machinery on explicit A^T.
        DistDynamicMatrix<double> C(grid, n, m);
        {
            DistDcsr<double> a_empty(grid, inner, n);
            auto Astar_full = build_update_matrix(grid, inner, n, feed(ta));
            // C += A^T B with A "empty" and A* = all of A (valid algebraic
            // path for building the initial product through the transA code).
            DistDynamicMatrix<double> A0(grid, inner, n);
            DistDcsr<double> b_empty(grid, inner, m);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(
                C, A0, Astar_full, B, b_empty, dopts);
        }
        CoordMap am = as_map(ta);
        const CoordMap bm = as_map(tb);
        test::expect_matches(C, reference_transposed(am, bm));

        for (int batch = 0; batch < 3; ++batch) {
            auto upd = random_triples(rng, inner, n, 18, -3.0, 3.0);
            sparse::combine_duplicates<PlusTimes<double>>(upd);
            auto Astar = build_update_matrix(grid, inner, n, feed(upd));
            DistDcsr<double> Bstar(grid, inner, m);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(C, A, Astar, B,
                                                               Bstar, dopts);
            core::add_update<PlusTimes<double>>(A, Astar);
            am = reference_add<PlusTimes<double>>(am, upd);
            test::expect_matches(C, reference_transposed(am, bm));
        }
    });
}

TEST_P(TransAP, UpdatesOfRightOperandMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(800);
        const index_t inner = 20, n = 16, m = 18;
        auto ta = random_triples(rng, inner, n, 100);
        auto tb = random_triples(rng, inner, m, 100);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, inner, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, inner, m, feed(tb));
        CoordMap am = as_map(ta);
        CoordMap bm = as_map(tb);
        // Initial product through the transA path (A* = A, as above).
        DistDynamicMatrix<double> C(grid, n, m);
        {
            DistDynamicMatrix<double> A0(grid, inner, n);
            auto Astar_full = build_update_matrix(grid, inner, n, feed(ta));
            DistDcsr<double> b_empty(grid, inner, m);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(
                C, A0, Astar_full, B, b_empty, dopts);
        }

        for (int batch = 0; batch < 3; ++batch) {
            auto upd = random_triples(rng, inner, m, 16, -3.0, 3.0);
            sparse::combine_duplicates<PlusTimes<double>>(upd);
            auto Bstar = build_update_matrix(grid, inner, m, feed(upd));
            DistDcsr<double> Astar(grid, inner, n);
            // C += A^T B* (Y-term only); B' not needed by the X-term here but
            // must reflect the post-update state per the algorithm contract.
            core::add_update<PlusTimes<double>>(B, Bstar);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(C, A, Astar, B,
                                                               Bstar, dopts);
            bm = reference_add<PlusTimes<double>>(bm, upd);
            test::expect_matches(C, reference_transposed(am, bm));
        }
    });
}

TEST_P(TransAP, SimultaneousUpdatesOfBothOperands) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(900);
        const index_t inner = 18, n = 18, m = 18;
        auto ta = random_triples(rng, inner, n, 90);
        auto tb = random_triples(rng, inner, m, 90);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, inner, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, inner, m, feed(tb));
        DistDynamicMatrix<double> C(grid, n, m);
        {
            DistDynamicMatrix<double> A0(grid, inner, n);
            auto Astar_full = build_update_matrix(grid, inner, n, feed(ta));
            DistDcsr<double> b_empty(grid, inner, m);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(
                C, A0, Astar_full, B, b_empty, dopts);
        }
        CoordMap am = as_map(ta), bm = as_map(tb);
        for (int batch = 0; batch < 2; ++batch) {
            auto ua = random_triples(rng, inner, n, 12, -2.0, 2.0);
            auto ub = random_triples(rng, inner, m, 12, -2.0, 2.0);
            sparse::combine_duplicates<PlusTimes<double>>(ua);
            sparse::combine_duplicates<PlusTimes<double>>(ub);
            auto Astar = build_update_matrix(grid, inner, n, feed(ua));
            auto Bstar = build_update_matrix(grid, inner, m, feed(ub));
            // C* = A*^T B' + A^T B*: B updated first, A afterwards.
            core::add_update<PlusTimes<double>>(B, Bstar);
            dynamic_spgemm_algebraic_transA<PlusTimes<double>>(C, A, Astar, B,
                                                               Bstar, dopts);
            core::add_update<PlusTimes<double>>(A, Astar);
            am = reference_add<PlusTimes<double>>(am, ua);
            bm = reference_add<PlusTimes<double>>(bm, ub);
            test::expect_matches(C, reference_transposed(am, bm));
        }
    });
}

TEST_P(TransAP, CstarOutCollectsExactlyTheDelta) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(950);
        const index_t n = 20;
        auto ta = random_triples(rng, n, n, 80);
        auto tb = random_triples(rng, n, n, 80);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, n, n, feed(tb));
        auto C = core::summa_multiply<PlusTimes<double>>(A, B);
        auto upd = random_triples(rng, n, n, 15);
        sparse::combine_duplicates<PlusTimes<double>>(upd);
        auto Astar = build_update_matrix(grid, n, n, feed(upd));
        DistDcsr<double> Bstar(grid, n, n);
        DistDynamicMatrix<double> cstar(grid, n, n);
        core::dynamic_spgemm_algebraic<PlusTimes<double>>(
            C, A, Astar, B, Bstar, dopts, &cstar);
        // cstar == A* B exactly.
        auto expect = test::reference_multiply<PlusTimes<double>>(
            as_map(upd), as_map(tb));
        test::expect_matches(cstar, expect);
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, TransAP,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

/// Reference C = A B^T from coordinate maps.
CoordMap reference_transposed_b(const CoordMap& a, const CoordMap& b) {
    CoordMap out;
    for (const auto& [ca, va] : a)
        for (const auto& [cb, vb] : b) {
            if (ca.second != cb.second) continue;  // shared inner column
            out[{ca.first, cb.first}] += va * vb;
        }
    return out;
}

class TransBP : public ::testing::TestWithParam<GridCase> {};

TEST_P(TransBP, UpdatesOfBothOperandsMatchRecompute) {
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(1000);
        const index_t n = 18, m = 20, inner = 22;
        auto ta = random_triples(rng, n, inner, 100);
        auto tb = random_triples(rng, m, inner, 100);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        sparse::combine_duplicates<PlusTimes<double>>(tb);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, inner, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, m, inner, feed(tb));
        CoordMap am = as_map(ta), bm = as_map(tb);

        // Initial C = A B^T through the transB path: A0 empty, A* = A.
        DistDynamicMatrix<double> C(grid, n, m);
        {
            DistDynamicMatrix<double> A0(grid, n, inner);
            auto Astar_full = build_update_matrix(grid, n, inner, feed(ta));
            DistDcsr<double> b_empty(grid, m, inner);
            core::dynamic_spgemm_algebraic_transB<PlusTimes<double>>(
                C, A0, Astar_full, B, b_empty, dopts);
        }
        test::expect_matches(C, reference_transposed_b(am, bm));

        for (int batch = 0; batch < 3; ++batch) {
            auto ua = random_triples(rng, n, inner, 12, -2.0, 2.0);
            auto ub = random_triples(rng, m, inner, 12, -2.0, 2.0);
            sparse::combine_duplicates<PlusTimes<double>>(ua);
            sparse::combine_duplicates<PlusTimes<double>>(ub);
            auto Astar = build_update_matrix(grid, n, inner, feed(ua));
            auto Bstar = build_update_matrix(grid, m, inner, feed(ub));
            // C* = A* B'^T + A B*^T: update B first, A afterwards.
            core::add_update<PlusTimes<double>>(B, Bstar);
            core::dynamic_spgemm_algebraic_transB<PlusTimes<double>>(
                C, A, Astar, B, Bstar, dopts);
            core::add_update<PlusTimes<double>>(A, Astar);
            am = reference_add<PlusTimes<double>>(am, ua);
            bm = reference_add<PlusTimes<double>>(bm, ub);
            test::expect_matches(C, reference_transposed_b(am, bm));
        }
    });
}

TEST_P(TransBP, RightOnlyUpdateIsTheOuterProductCase) {
    // C = A B^T with B gaining rows is the similarity-join pattern:
    // new columns of B^T join against all of A.
    const GridCase gc = GetParam();
    run_world(gc.p(), [&](Comm& c) {
        ProcessGrid grid = dsg::test::make_grid(c, gc);
        core::DynamicSpgemmOptions dopts;
        dopts.comm_mode = gc.comm_mode;
        std::mt19937_64 rng(1100);
        const index_t n = 16, m = 16, inner = 16;
        auto ta = random_triples(rng, n, inner, 80);
        sparse::combine_duplicates<PlusTimes<double>>(ta);
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto A = build_dynamic_matrix<PlusTimes<double>>(grid, n, inner, feed(ta));
        auto B = build_dynamic_matrix<PlusTimes<double>>(grid, m, inner,
                                                         std::vector<Triple<double>>{});
        DistDynamicMatrix<double> C(grid, n, m);
        CoordMap am = as_map(ta);
        CoordMap bm;
        for (int batch = 0; batch < 3; ++batch) {
            auto ub = random_triples(rng, m, inner, 14);
            sparse::combine_duplicates<PlusTimes<double>>(ub);
            auto Bstar = build_update_matrix(grid, m, inner, feed(ub));
            DistDcsr<double> Astar(grid, n, inner);
            core::add_update<PlusTimes<double>>(B, Bstar);
            core::dynamic_spgemm_algebraic_transB<PlusTimes<double>>(
                C, A, Astar, B, Bstar, dopts);
            bm = reference_add<PlusTimes<double>>(bm, ub);
            test::expect_matches(C, reference_transposed_b(am, bm));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(GridShapes, TransBP,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
