// Edge cases of core::update_ops — the machinery the streaming engine leans
// on: empty batches, duplicate (i, j) tuples within one batch for all three
// operations, MASK of absent entries, and tiny (1x1) matrices/grids.
#include <gtest/gtest.h>

#include <vector>

#include "core/dist_test_utils.hpp"
#include "core/update_ops.hpp"
#include "par/comm.hpp"

namespace {

using namespace dsg;
using test::CoordMap;
using SR = sparse::PlusTimes<double>;
using sparse::index_t;
using sparse::Triple;

constexpr int kRanks = 4;  // 2x2 grid

TEST(UpdateOpsEdgeCases, EmptyBatchLeavesMatrixUntouched) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 32;
        std::vector<Triple<double>> seed;
        if (comm.rank() == 0) seed = {{1, 2, 5.0}, {30, 31, 7.0}};
        auto A = core::build_dynamic_matrix<SR>(grid, n, n, seed);
        const CoordMap before = test::as_map(A.gather_global());

        auto U = core::build_update_matrix<double>(grid, n, n, {});
        EXPECT_EQ(U.global_nnz(), 0u);
        core::add_update<SR>(A, U);
        core::merge_update(A, U);
        core::mask_delete(A, U);

        test::expect_matches_exactly(A, before);
    });
}

TEST(UpdateOpsEdgeCases, DuplicateTuplesInOneBatchAddCombines) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        auto A = core::build_dynamic_matrix<SR>(
            grid, n, n,
            comm.rank() == 0 ? std::vector<Triple<double>>{{3, 4, 1.0}}
                             : std::vector<Triple<double>>{});

        std::vector<Triple<double>> batch;
        if (comm.rank() == 0)
            batch = {{3, 4, 2.0}, {3, 4, 10.0}, {5, 5, 1.0}, {5, 5, 1.0}};
        auto U = core::build_update_matrix(grid, n, n, batch);
        // Duplicates survive A* as separate entries and combine on apply.
        EXPECT_EQ(U.global_nnz(), 4u);
        core::add_update<SR>(A, U);

        test::expect_matches_exactly(A, {{{3, 4}, 13.0}, {{5, 5}, 2.0}});
    });
}

TEST(UpdateOpsEdgeCases, DuplicateTuplesInOneBatchMergeLastWins) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        auto A = core::build_dynamic_matrix<SR>(
            grid, n, n,
            comm.rank() == 0 ? std::vector<Triple<double>>{{3, 4, 1.0}}
                             : std::vector<Triple<double>>{});

        // All duplicates originate on ONE rank: redistribution and the
        // counting sorts are stable, so batch order reaches the apply loop
        // and the last value of the batch must win.
        std::vector<Triple<double>> batch;
        if (comm.rank() == 0)
            batch = {{3, 4, 5.0}, {3, 4, 7.0}, {8, 9, 2.5}, {8, 9, 0.5}};
        auto U = core::build_update_matrix(grid, n, n, batch);
        core::merge_update(A, U);

        test::expect_matches_exactly(A, {{{3, 4}, 7.0}, {{8, 9}, 0.5}});
    });
}

TEST(UpdateOpsEdgeCases, DuplicateAndAbsentMaskTuplesAreSafe) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        std::vector<Triple<double>> seed;
        if (comm.rank() == 0) seed = {{1, 1, 1.0}, {2, 2, 2.0}, {3, 3, 3.0}};
        auto A = core::build_dynamic_matrix<SR>(grid, n, n, seed);

        std::vector<Triple<double>> batch;
        if (comm.rank() == 1) {
            batch = {{2, 2, 0.0}, {2, 2, 0.0},   // duplicate delete
                     {9, 9, 0.0}, {15, 0, 0.0}}; // absent coordinates
        }
        auto U = core::build_update_matrix(grid, n, n, batch);
        core::mask_delete(A, U);

        test::expect_matches_exactly(A, {{{1, 1}, 1.0}, {{3, 3}, 3.0}});
    });
}

TEST(UpdateOpsEdgeCases, MaskOnEmptyMatrixIsNoop) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 8;
        core::DistDynamicMatrix<double> A(grid, n, n);
        std::vector<Triple<double>> batch;
        if (comm.rank() == 2) batch = {{0, 0, 0.0}, {7, 7, 0.0}};
        auto U = core::build_update_matrix(grid, n, n, batch);
        core::mask_delete(A, U);
        EXPECT_EQ(A.global_nnz(), 0u);
    });
}

TEST(UpdateOpsEdgeCases, SingleRankGridAllOps) {
    par::run_world(1, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        auto A = core::build_dynamic_matrix<SR>(
            grid, n, n, std::vector<Triple<double>>{{0, 1, 1.0}, {2, 3, 4.0}});

        auto add = core::build_update_matrix(
            grid, n, n, std::vector<Triple<double>>{{0, 1, 2.0}, {4, 4, 9.0}});
        core::add_update<SR>(A, add);
        auto merge = core::build_update_matrix(
            grid, n, n, std::vector<Triple<double>>{{2, 3, 0.5}});
        core::merge_update(A, merge);
        auto mask = core::build_update_matrix(
            grid, n, n, std::vector<Triple<double>>{{4, 4, 0.0}});
        core::mask_delete(A, mask);

        test::expect_matches_exactly(A, {{{0, 1}, 3.0}, {{2, 3}, 0.5}});
        comm.barrier();
    });
}

TEST(UpdateOpsEdgeCases, OneByOneMatrixOnMultiRankGrid) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        // A 1x1 matrix on a 2x2 grid: three of the four blocks are empty
        // (0x1, 1x0, 0x0) and every update routes to one rank.
        const index_t n = 1;
        core::DistDynamicMatrix<double> A(grid, n, n);

        std::vector<Triple<double>> batch;
        if (comm.rank() == 3) batch = {{0, 0, 2.0}, {0, 0, 3.0}};
        auto add = core::build_update_matrix(grid, n, n, batch);
        core::add_update<SR>(A, add);
        test::expect_matches_exactly(A, {{{0, 0}, 5.0}});

        auto merge = core::build_update_matrix(
            grid, n, n,
            comm.rank() == 0 ? std::vector<Triple<double>>{{0, 0, -1.5}}
                             : std::vector<Triple<double>>{});
        core::merge_update(A, merge);
        test::expect_matches_exactly(A, {{{0, 0}, -1.5}});

        auto mask = core::build_update_matrix(
            grid, n, n,
            comm.rank() == 1 ? std::vector<Triple<double>>{{0, 0, 0.0}}
                             : std::vector<Triple<double>>{});
        core::mask_delete(A, mask);
        EXPECT_EQ(A.global_nnz(), 0u);
    });
}

}  // namespace
