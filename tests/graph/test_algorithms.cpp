// Graph algorithms: triangle counting (static + dynamically maintained)
// against combinatorial ground truth; k-hop (min,+) distances against a
// hop-bounded Bellman-Ford reference; dynamic maintenance equals recompute.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace dsg;
using core::ProcessGrid;
using graph::DynamicMultiSourceProduct;
using graph::DynamicTriangleCounter;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::Triple;

/// Combinatorial reference triangle count on an edge set.
std::size_t brute_force_triangles(const std::vector<Triple<double>>& edges,
                                  index_t n) {
    std::vector<std::vector<bool>> adj(static_cast<std::size_t>(n),
                                       std::vector<bool>(static_cast<std::size_t>(n)));
    for (const auto& e : edges)
        adj[static_cast<std::size_t>(e.row)][static_cast<std::size_t>(e.col)] =
            true;
    std::size_t count = 0;
    for (index_t u = 0; u < n; ++u)
        for (index_t v = static_cast<index_t>(u) + 1; v < n; ++v)
            for (index_t w = v + 1; w < n; ++w)
                if (adj[u][v] && adj[v][w] && adj[u][w]) ++count;
    return count;
}

class AlgoP : public ::testing::TestWithParam<int> {};

TEST_P(AlgoP, TriangleCountOnKnownGraphs) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        // K5: C(5,3) = 10 triangles.
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, 5, 5, feed(graph::complete_graph(5)));
        EXPECT_DOUBLE_EQ(graph::triangle_count(A), 10.0);
        // C6 (cycle): no triangles.
        auto edges = graph::symmetrize(graph::cycle_graph(6));
        auto B = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, 6, 6, feed(edges));
        EXPECT_DOUBLE_EQ(graph::triangle_count(B), 0.0);
        // Star: no triangles.
        auto S = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, 8, 8, feed(graph::star_graph(8)));
        EXPECT_DOUBLE_EQ(graph::triangle_count(S), 0.0);
    });
}

TEST_P(AlgoP, TriangleCountMatchesBruteForceOnRandomGraph) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 24;
        auto edges = graph::simplify(graph::erdos_renyi_edges(n, 150, 5));
        for (auto& e : edges) e.value = 1.0;
        auto sym = graph::simplify(graph::symmetrize(edges));
        auto A = core::build_dynamic_matrix<sparse::PlusTimes<double>>(
            grid, n, n,
            c.rank() == 0 ? sym : std::vector<Triple<double>>{});
        EXPECT_DOUBLE_EQ(graph::triangle_count(A),
                         static_cast<double>(brute_force_triangles(sym, n)));
    });
}

TEST_P(AlgoP, DynamicTriangleCounterTracksInsertions) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 20;
        std::mt19937_64 rng(99);
        auto all = graph::simplify(graph::erdos_renyi_edges(n, 120, 6));
        for (auto& e : all) e.value = 1.0;
        auto sym = graph::simplify(graph::symmetrize(all));
        // Split into an initial half and three batches of undirected edges.
        std::vector<Triple<double>> undirected;
        for (const auto& e : sym)
            if (e.row < e.col) undirected.push_back(e);
        const std::size_t half = undirected.size() / 2;

        auto both_dirs = [](const std::vector<Triple<double>>& es) {
            std::vector<Triple<double>> out;
            for (const auto& e : es) {
                out.push_back(e);
                out.push_back({e.col, e.row, e.value});
            }
            return out;
        };
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };

        DynamicTriangleCounter counter(grid, n);
        std::vector<Triple<double>> current(undirected.begin(),
                                            undirected.begin() + half);
        counter.initialize(feed(both_dirs(current)));
        EXPECT_DOUBLE_EQ(
            counter.count(),
            static_cast<double>(brute_force_triangles(both_dirs(current), n)));

        const std::size_t rest = undirected.size() - half;
        for (int batch = 0; batch < 3; ++batch) {
            const std::size_t b = half + batch * rest / 3;
            const std::size_t e = half + (batch + 1) * rest / 3;
            std::vector<Triple<double>> newly(undirected.begin() + b,
                                              undirected.begin() + e);
            counter.insert_edges(feed(both_dirs(newly)));
            current.insert(current.end(), newly.begin(), newly.end());
            EXPECT_DOUBLE_EQ(counter.count(),
                             static_cast<double>(brute_force_triangles(
                                 both_dirs(current), n)))
                << "batch " << batch;
        }
    });
}

/// Hop-bounded (min,+) reference distances.
std::map<std::pair<index_t, index_t>, double> reference_khop(
    const std::vector<Triple<double>>& edges, index_t n,
    const std::vector<index_t>& sources, int hops) {
    std::map<std::pair<index_t, index_t>, double> dist;
    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < sources.size(); ++s) {
        std::vector<double> d(static_cast<std::size_t>(n), inf);
        std::vector<double> cur(static_cast<std::size_t>(n), inf);
        cur[static_cast<std::size_t>(sources[s])] = 0.0;
        for (int h = 0; h < hops; ++h) {
            std::vector<double> nxt(static_cast<std::size_t>(n), inf);
            for (const auto& e : edges) {
                const double via = cur[static_cast<std::size_t>(e.row)] + e.value;
                auto& slot = nxt[static_cast<std::size_t>(e.col)];
                if (via < slot) slot = via;
            }
            for (index_t v = 0; v < n; ++v) {
                d[static_cast<std::size_t>(v)] = std::min(
                    d[static_cast<std::size_t>(v)], nxt[static_cast<std::size_t>(v)]);
                cur[static_cast<std::size_t>(v)] =
                    std::min(cur[static_cast<std::size_t>(v)],
                             nxt[static_cast<std::size_t>(v)]);
            }
        }
        for (index_t v = 0; v < n; ++v)
            if (d[static_cast<std::size_t>(v)] < inf)
                dist[{static_cast<index_t>(s), v}] = d[static_cast<std::size_t>(v)];
    }
    return dist;
}

TEST_P(AlgoP, KhopDistancesMatchReference) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 18;
        auto edges = graph::simplify(graph::erdos_renyi_edges(n, 60, 11));
        const std::vector<index_t> sources{0, 5, 17};
        auto A = core::build_dynamic_matrix<sparse::MinPlus<double>>(
            grid, n, n, c.rank() == 0 ? edges : std::vector<Triple<double>>{});
        auto S = graph::source_selector(grid, n, sources);
        for (int hops : {1, 2, 3}) {
            auto D = graph::khop_distances(A, S, hops);
            auto expect = reference_khop(edges, n, sources, hops);
            std::map<std::pair<index_t, index_t>, double> got;
            for (const auto& t : D.gather_global()) got[{t.row, t.col}] = t.value;
            ASSERT_EQ(got.size(), expect.size()) << "hops " << hops;
            for (const auto& [coord, v] : expect) {
                ASSERT_TRUE(got.count(coord));
                EXPECT_NEAR(got[coord], v, 1e-9);
            }
        }
    });
}

TEST_P(AlgoP, DynamicMultiSourceProductTracksDecreases) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 16;
        auto edges = graph::simplify(graph::erdos_renyi_edges(n, 40, 13));
        const std::vector<index_t> sources{1, 8};
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        DynamicMultiSourceProduct msp(grid, n, sources);
        const std::size_t half = edges.size() / 2;
        std::vector<Triple<double>> current(edges.begin(), edges.begin() + half);
        msp.initialize(feed(current));

        std::vector<Triple<double>> batch(edges.begin() + half, edges.end());
        msp.apply_decreases(feed(batch));
        current.insert(current.end(), batch.begin(), batch.end());

        auto expect = reference_khop(current, n, sources, 1);
        std::map<std::pair<index_t, index_t>, double> got;
        for (const auto& t : msp.distances().gather_global())
            got[{t.row, t.col}] = t.value;
        ASSERT_EQ(got.size(), expect.size());
        for (const auto& [coord, v] : expect) {
            ASSERT_TRUE(got.count(coord));
            EXPECT_NEAR(got[coord], v, 1e-9);
        }
    });
}

TEST_P(AlgoP, DynamicTriangleCounterTracksDeletions) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 18;
        auto all = graph::simplify(graph::erdos_renyi_edges(n, 90, 31));
        for (auto& e : all) e.value = 1.0;
        auto sym = graph::simplify(graph::symmetrize(all));
        std::vector<Triple<double>> undirected;
        for (const auto& e : sym)
            if (e.row < e.col) undirected.push_back(e);
        auto both = [](const std::vector<Triple<double>>& es) {
            std::vector<Triple<double>> out;
            for (const auto& e : es) {
                out.push_back(e);
                out.push_back({e.col, e.row, e.value});
            }
            return out;
        };
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        graph::DynamicTriangleCounter counter(grid, n);
        counter.initialize(feed(both(undirected)));
        EXPECT_DOUBLE_EQ(counter.count(),
                         static_cast<double>(
                             brute_force_triangles(both(undirected), n)));

        // Remove every fourth edge in two batches; count must track exactly.
        std::vector<Triple<double>> doomed;
        std::vector<Triple<double>> kept;
        for (std::size_t x = 0; x < undirected.size(); ++x)
            (x % 4 == 0 ? doomed : kept).push_back(undirected[x]);
        const std::size_t half = doomed.size() / 2;
        std::vector<Triple<double>> first(doomed.begin(), doomed.begin() + half);
        std::vector<Triple<double>> second(doomed.begin() + half, doomed.end());

        counter.remove_edges(feed(both(first)));
        std::vector<Triple<double>> current = kept;
        current.insert(current.end(), second.begin(), second.end());
        EXPECT_DOUBLE_EQ(counter.count(),
                         static_cast<double>(
                             brute_force_triangles(both(current), n)));

        counter.remove_edges(feed(both(second)));
        EXPECT_DOUBLE_EQ(counter.count(),
                         static_cast<double>(brute_force_triangles(both(kept), n)));
        // A's structural size matches the surviving edge set.
        EXPECT_EQ(counter.adjacency().global_nnz(), 2 * kept.size());
    });
}

TEST_P(AlgoP, DynamicContractionMatchesDirectComputation) {
    run_world(GetParam(), [&](Comm& c) {
        ProcessGrid grid(c);
        const index_t n = 30;
        const index_t clusters = 5;
        std::vector<index_t> assignment(static_cast<std::size_t>(n));
        for (index_t v = 0; v < n; ++v)
            assignment[static_cast<std::size_t>(v)] = v % clusters;

        auto edges = graph::simplify(graph::erdos_renyi_edges(n, 120, 21));
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        graph::DynamicContraction contraction(grid, n, clusters, assignment);

        // Stream edges in three batches; after each, the contracted matrix
        // must equal the direct aggregation of all edges seen so far.
        std::map<std::pair<index_t, index_t>, double> expect;
        const std::size_t third = edges.size() / 3;
        for (int b = 0; b < 3; ++b) {
            const std::size_t lo = b * third;
            const std::size_t hi = b == 2 ? edges.size() : (b + 1) * third;
            std::vector<Triple<double>> batch(edges.begin() + lo,
                                              edges.begin() + hi);
            contraction.insert_edges(feed(batch));
            for (const auto& e : batch)
                expect[{assignment[static_cast<std::size_t>(e.row)],
                        assignment[static_cast<std::size_t>(e.col)]}] += e.value;
            auto got = contraction.contracted().gather_global();
            std::map<std::pair<index_t, index_t>, double> gm;
            for (const auto& t : got) gm[{t.row, t.col}] = t.value;
            for (const auto& [coord, v] : expect) {
                ASSERT_TRUE(gm.count(coord)) << "batch " << b;
                EXPECT_NEAR(gm[coord], v, 1e-9);
            }
            for (const auto& [coord, v] : gm) {
                if (!expect.count(coord)) {
                    EXPECT_NEAR(v, 0.0, 1e-9);
                }
            }
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, AlgoP, ::testing::Values(1, 4));

}  // namespace
