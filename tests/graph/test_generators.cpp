#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace {

using namespace dsg::graph;
using dsg::sparse::index_t;
using dsg::sparse::Triple;

TEST(Rmat, RespectsVertexBoundsAndEdgeCount) {
    auto edges = rmat_edges(8, 1000, 7);
    EXPECT_EQ(edges.size(), 1000u);
    for (const auto& e : edges) {
        EXPECT_GE(e.row, 0);
        EXPECT_LT(e.row, 256);
        EXPECT_GE(e.col, 0);
        EXPECT_LT(e.col, 256);
        EXPECT_GT(e.value, 0.0);
        EXPECT_LE(e.value, 1.0);
    }
}

TEST(Rmat, DeterministicInSeed) {
    auto a = rmat_edges(6, 200, 9);
    auto b = rmat_edges(6, 200, 9);
    auto c = rmat_edges(6, 200, 10);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Rmat, Graph500ParametersAreSkewed) {
    // With a = 0.57 the low-id quadrant gets most of the mass: vertex degrees
    // must be visibly skewed compared to uniform.
    auto edges = rmat_edges(10, 20'000, 3);
    std::vector<int> degree(1024, 0);
    for (const auto& e : edges) ++degree[static_cast<std::size_t>(e.row)];
    const int max_deg = *std::max_element(degree.begin(), degree.end());
    // Uniform expectation would be ~20 per vertex; R-MAT hubs are far above.
    EXPECT_GT(max_deg, 100);
}

TEST(ErdosRenyi, BoundsAndDeterminism) {
    auto a = erdos_renyi_edges(50, 500, 1);
    EXPECT_EQ(a.size(), 500u);
    for (const auto& e : a) {
        EXPECT_LT(e.row, 50);
        EXPECT_LT(e.col, 50);
    }
    EXPECT_EQ(a, erdos_renyi_edges(50, 500, 1));
}

TEST(Symmetrize, AddsReverseEdgesExceptLoops) {
    std::vector<Triple<double>> edges{{0, 1, 2.0}, {2, 2, 1.0}};
    auto sym = symmetrize(edges);
    ASSERT_EQ(sym.size(), 3u);  // loop not duplicated
    EXPECT_EQ(sym[2], (Triple<double>{1, 0, 2.0}));
}

TEST(Simplify, DropsLoopsAndDuplicates) {
    std::vector<Triple<double>> edges{
        {0, 1, 1.0}, {0, 1, 2.0}, {3, 3, 1.0}, {1, 0, 1.0}};
    auto simple = simplify(edges);
    ASSERT_EQ(simple.size(), 2u);
    EXPECT_EQ(simple[0], (Triple<double>{0, 1, 1.0}));  // first kept
    EXPECT_EQ(simple[1], (Triple<double>{1, 0, 1.0}));
}

TEST(DeterministicGraphs, Shapes) {
    EXPECT_EQ(path_graph(5).size(), 4u);
    EXPECT_EQ(cycle_graph(5).size(), 5u);
    EXPECT_EQ(complete_graph(4).size(), 12u);
    EXPECT_EQ(star_graph(4).size(), 6u);
}

TEST(GraphIo, RoundTrip) {
    std::vector<Triple<double>> edges{{0, 1, 1.5}, {7, 3, 2.0}};
    std::stringstream ss;
    write_edge_list(ss, edges);
    index_t n = 0;
    auto back = read_edge_list(ss, n);
    EXPECT_EQ(back, edges);
    EXPECT_EQ(n, 8);
}

TEST(GraphIo, SkipsCommentsAndDefaultsWeight) {
    std::stringstream ss("# comment\n% other\n1 2\n3 4 9.5\n");
    index_t n = 0;
    auto edges = read_edge_list(ss, n);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Triple<double>{1, 2, 1.0}));
    EXPECT_EQ(edges[1], (Triple<double>{3, 4, 9.5}));
    EXPECT_EQ(n, 5);
}

}  // namespace
