// Build-sanity smoke test: this translation unit includes ONLY the umbrella
// header, so it fails to compile if dsg.hpp stops being self-contained. The
// tests assert the minimum the build must deliver: a 2x2 process-grid world
// starts, and a trivial SpGEMM on it produces the right answer.
#include "dsg.hpp"

#include <gtest/gtest.h>

namespace {

using Semiring = dsg::sparse::PlusTimes<double>;

TEST(BuildSanity, TwoByTwoGridComesUp) {
    dsg::par::run_world(4, [](dsg::par::Comm& c) {
        dsg::core::ProcessGrid grid(c);
        EXPECT_EQ(grid.rows(), 2);
        EXPECT_EQ(grid.cols(), 2);
        EXPECT_EQ(grid.rank_of(grid.grid_row(), grid.grid_col()), c.rank());
    });
}

TEST(BuildSanity, TrivialSpgemmOnTwoByTwoGrid) {
    dsg::par::run_world(4, [](dsg::par::Comm& c) {
        dsg::core::ProcessGrid grid(c);
        constexpr dsg::sparse::index_t n = 8;
        // I * I = I, scattered so only rank 0 contributes tuples.
        std::vector<dsg::sparse::Triple<double>> eye;
        if (c.rank() == 0) {
            for (dsg::sparse::index_t i = 0; i < n; ++i) eye.push_back({i, i, 1.0});
        }
        auto A = dsg::core::build_dynamic_matrix<Semiring>(grid, n, n, eye);
        auto C = dsg::core::summa_multiply<Semiring>(A, A);
        EXPECT_EQ(C.global_nnz(), static_cast<std::size_t>(n));
    });
}

}  // namespace
