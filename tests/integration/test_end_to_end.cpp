// End-to-end integration: a streaming analytics pipeline exercising every
// layer together — construction, batched insertions/updates/deletions,
// algebraic and general dynamic SpGEMM, Bloom maintenance, the applications,
// and intra-rank threading — verified against recomputation at every step.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/ewise.hpp"
#include "core/general_spgemm.hpp"
#include "core/summa.hpp"
#include "core/update_ops.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "../core/dist_test_utils.hpp"

namespace {

using namespace dsg;
using core::ProcessGrid;
using par::Comm;
using par::run_world;
using sparse::index_t;
using sparse::MinPlus;
using sparse::PlusTimes;
using sparse::Triple;

struct Config {
    int ranks;
    int threads;
};

class EndToEnd : public ::testing::TestWithParam<Config> {};

TEST_P(EndToEnd, StreamingProductMaintenanceLifecycle) {
    const auto [ranks, threads] = GetParam();
    run_world(ranks, [&](Comm& c) {
        ProcessGrid grid(c);
        par::ThreadPool pool(threads);
        core::DynamicSpgemmOptions dyn_opts;
        dyn_opts.pool = &pool;
        const index_t n = 64;

        // --- Phase 1: streaming construction + algebraic maintenance ------
        auto all_edges = graph::simplify(
            graph::symmetrize(graph::rmat_edges(6, 600, 42)));
        auto B = core::build_dynamic_matrix<PlusTimes<double>>(
            grid, n, n,
            c.rank() == 0 ? all_edges : std::vector<Triple<double>>{});
        core::DistDynamicMatrix<double> A(grid, n, n);
        core::DistDynamicMatrix<double> C(grid, n, n);

        const std::size_t kBatch = all_edges.size() / 5;
        for (int b = 0; b < 5; ++b) {
            const std::size_t lo = b * kBatch;
            const std::size_t hi =
                b == 4 ? all_edges.size() : (b + 1) * kBatch;
            std::vector<Triple<double>> batch(all_edges.begin() + lo,
                                              all_edges.begin() + hi);
            auto Astar = core::build_update_matrix(
                grid, n, n,
                c.rank() == 0 ? batch : std::vector<Triple<double>>{});
            core::DistDcsr<double> Bstar(grid, n, n);
            core::dynamic_spgemm_algebraic<PlusTimes<double>>(C, A, Astar, B,
                                                              Bstar, dyn_opts);
            core::add_update<PlusTimes<double>>(A, Astar, &pool);
        }
        // C must equal the static product of the final A and B.
        core::SummaOptions sopts;
        sopts.pool = &pool;
        auto C_ref = core::summa_multiply<PlusTimes<double>>(A, B, sopts);
        test::expect_matches(C, test::as_map(C_ref.gather_global()));

        // --- Phase 2: (min,+) pipeline with general updates ---------------
        auto Amin = core::build_dynamic_matrix<MinPlus<double>>(
            grid, n, n,
            c.rank() == 0 ? all_edges : std::vector<Triple<double>>{});
        core::DistDynamicMatrix<double> D(grid, n, n);
        core::DistDynamicMatrix<std::uint64_t> F(grid, n, n);
        core::SummaOptions bloom_opts;
        bloom_opts.bloom_out = &F;
        bloom_opts.pool = &pool;
        core::summa<MinPlus<double>>(D, Amin, B, bloom_opts);

        // Delete a slice of A's entries and bump some weights upward — both
        // general updates under (min,+).
        std::mt19937_64 rng(7);
        std::vector<Triple<double>> doomed;
        std::vector<Triple<double>> bumped;
        for (std::size_t x = 0; x < all_edges.size(); ++x) {
            if (x % 9 == 0) doomed.push_back(all_edges[x]);
            else if (x % 9 == 1)
                bumped.push_back({all_edges[x].row, all_edges[x].col,
                                  all_edges[x].value + 50.0});
        }
        std::vector<Triple<double>> changed = doomed;
        changed.insert(changed.end(), bumped.begin(), bumped.end());
        auto feed = [&](const std::vector<Triple<double>>& ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };
        auto Astar = core::build_update_matrix(grid, n, n, feed(changed));
        core::DistDcsr<double> Bstar(grid, n, n);
        auto Dstar = core::compute_pattern(Amin, Astar, B, Bstar, dyn_opts);
        core::mask_delete(Amin, core::build_update_matrix(grid, n, n,
                                                          feed(doomed)),
                          &pool);
        core::merge_update(Amin, core::build_update_matrix(grid, n, n,
                                                           feed(bumped)),
                           &pool);
        core::GeneralSpgemmOptions gopts;
        gopts.pool = &pool;
        core::general_dynamic_spgemm<MinPlus<double>>(D, F, Amin, B, Dstar,
                                                      gopts);
        auto D_ref = core::summa_multiply<MinPlus<double>>(Amin, B, sopts);
        const auto dm = test::as_map(D.gather_global());
        const auto rm = test::as_map(D_ref.gather_global());
        ASSERT_EQ(dm.size(), rm.size());
        for (const auto& [coord, v] : rm) {
            auto it = dm.find(coord);
            ASSERT_NE(it, dm.end());
            EXPECT_NEAR(it->second, v, 1e-9);
        }

        // --- Phase 3: cleanup operations stay consistent -------------------
        const double before = core::ewise_reduce(
            D, 0.0,
            [](double acc, index_t, index_t, double v) { return acc + v; },
            [](double a, double b) { return a + b; });
        core::ewise_apply(D, [](index_t, index_t, double v) { return v * 2; });
        const double after = core::ewise_reduce(
            D, 0.0,
            [](double acc, index_t, index_t, double v) { return acc + v; },
            [](double a, double b) { return a + b; });
        EXPECT_NEAR(after, 2 * before, 1e-6);
    });
}

TEST_P(EndToEnd, ApplicationsAgreeWithEachOther) {
    const auto [ranks, threads] = GetParam();
    run_world(ranks, [&](Comm& c) {
        ProcessGrid grid(c);
        par::ThreadPool pool(threads);
        const index_t n = 48;
        auto edges = graph::simplify(graph::erdos_renyi_edges(n, 200, 9));
        for (auto& e : edges) e.value = 1.0;
        auto sym = graph::simplify(graph::symmetrize(edges));
        auto feed = [&](std::vector<Triple<double>> ts) {
            return c.rank() == 0 ? ts : std::vector<Triple<double>>{};
        };

        // Dynamic counter streamed in two halves == static count at the end.
        std::vector<Triple<double>> undirected;
        for (const auto& e : sym)
            if (e.row < e.col) undirected.push_back(e);
        auto both = [](const std::vector<Triple<double>>& es) {
            std::vector<Triple<double>> out;
            for (const auto& e : es) {
                out.push_back(e);
                out.push_back({e.col, e.row, e.value});
            }
            return out;
        };
        graph::DynamicTriangleCounter counter(grid, n, &pool);
        const std::size_t half = undirected.size() / 2;
        counter.initialize(feed(both(
            {undirected.begin(), undirected.begin() + half})));
        counter.insert_edges(feed(both(
            {undirected.begin() + half, undirected.end()})));

        auto Adj = core::build_dynamic_matrix<PlusTimes<double>>(
            grid, n, n, feed(sym));
        EXPECT_DOUBLE_EQ(counter.count(), graph::triangle_count(Adj, &pool));
    });
}

INSTANTIATE_TEST_SUITE_P(Configs, EndToEnd,
                         ::testing::Values(Config{1, 1}, Config{4, 1},
                                           Config{4, 2}, Config{9, 2}));

}  // namespace
