// The umbrella header must compile standalone and expose the whole API.
#include <gtest/gtest.h>

#include "dsg.hpp"

namespace {

TEST(Umbrella, EverythingIsReachable) {
    dsg::par::run_world(4, [](dsg::par::Comm& c) {
        dsg::core::ProcessGrid grid(c);
        auto edges = dsg::graph::cycle_graph(16);
        auto A = dsg::core::build_dynamic_matrix<dsg::sparse::PlusTimes<double>>(
            grid, 16, 16,
            c.rank() == 0 ? edges
                          : std::vector<dsg::sparse::Triple<double>>{});
        auto C = dsg::core::summa_multiply<dsg::sparse::PlusTimes<double>>(A, A);
        // A cycle's square is the two-step cycle: 16 entries.
        EXPECT_EQ(C.global_nnz(), 16u);
        EXPECT_EQ(dsg::graph::triangle_count(A), 0.0);
    });
}

}  // namespace
