// The periodic metrics exporter: JSONL line-per-tick appends, the final
// snapshot written on stop, Prometheus whole-file rewrites, the on_snapshot
// hook, and format inference from file names.
#include "obs/exporter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace obs = dsg::obs;

namespace {

std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return {};
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        auto nl = text.find('\n', pos);
        if (nl == std::string::npos) nl = text.size();
        if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/" + name;
}

TEST(Exporter, StopWritesAFinalJsonlSnapshot) {
    obs::Registry reg;
    reg.counter("events").add(3);
    const std::string path = temp_path("dsg_exporter_final.jsonl");
    {
        // Long interval: the thread never ticks on its own; the final
        // snapshot on stop is the only write.
        obs::MetricsExporter::Config cfg;
        cfg.path = path;
        cfg.interval_ms = 60'000;
        obs::MetricsExporter exporter(reg, std::move(cfg));
        exporter.stop();
        EXPECT_EQ(exporter.ticks(), 1u);
        exporter.stop();  // idempotent
        EXPECT_EQ(exporter.ticks(), 1u);
    }
    const auto lines = lines_of(slurp(path));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].front(), '{');
    EXPECT_EQ(lines[0].back(), '}');
    EXPECT_NE(lines[0].find("\"ts_ms\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"events\": 3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Exporter, JsonlAppendsOneLinePerTick) {
    obs::Registry reg;
    auto& counter = reg.counter("ticks_seen");
    const std::string path = temp_path("dsg_exporter_ticks.jsonl");
    {
        obs::MetricsExporter::Config cfg;
        cfg.path = path;
        cfg.interval_ms = 60'000;
        obs::MetricsExporter exporter(reg, std::move(cfg));
        counter.add(1);
        exporter.write_now();
        counter.add(1);
        exporter.write_now();
        exporter.stop();  // third write: the final snapshot
    }
    const auto lines = lines_of(slurp(path));
    ASSERT_EQ(lines.size(), 3u);
    // Each line is a self-contained object; the counter grows across lines.
    EXPECT_NE(lines[0].find("\"ticks_seen\": 1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"ticks_seen\": 2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"ticks_seen\": 2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Exporter, PeriodicTicksHappenWithoutExplicitWrites) {
    obs::Registry reg;
    reg.counter("c").add(1);
    const std::string path = temp_path("dsg_exporter_periodic.jsonl");
    {
        obs::MetricsExporter::Config cfg;
        cfg.path = path;
        cfg.interval_ms = 5;
        obs::MetricsExporter exporter(reg, std::move(cfg));
        // Wait until the background thread has ticked at least twice.
        for (int spin = 0; spin < 2000 && exporter.ticks() < 2; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_GE(exporter.ticks(), 2u);
    }
    EXPECT_GE(lines_of(slurp(path)).size(), 2u);
    std::remove(path.c_str());
}

TEST(Exporter, PrometheusRewritesWholeFile) {
    obs::Registry reg;
    auto& gauge = reg.gauge("depth");
    const std::string path = temp_path("dsg_exporter.prom");
    {
        obs::MetricsExporter::Config cfg;
        cfg.path = path;
        cfg.interval_ms = 60'000;
        cfg.format = obs::ExportFormat::Prometheus;
        obs::MetricsExporter exporter(reg, std::move(cfg));
        gauge.set(5);
        exporter.write_now();
        gauge.set(9);
        exporter.stop();
    }
    const std::string text = slurp(path);
    // Rewritten, not appended: only the final value remains.
    EXPECT_EQ(text.find("depth 5"), std::string::npos);
    EXPECT_NE(text.find("depth 9"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Exporter, OnSnapshotRunsBeforeEveryWrite) {
    obs::Registry reg;
    std::atomic<int> hook_runs{0};
    const std::string path = temp_path("dsg_exporter_hook.jsonl");
    {
        obs::MetricsExporter::Config cfg;
        cfg.path = path;
        cfg.interval_ms = 60'000;
        cfg.on_snapshot = [&reg, &hook_runs] {
            reg.gauge("mirrored").set(++hook_runs);
        };
        obs::MetricsExporter exporter(reg, std::move(cfg));
        exporter.write_now();
        exporter.stop();
    }
    EXPECT_EQ(hook_runs.load(), 2);
    const auto lines = lines_of(slurp(path));
    ASSERT_EQ(lines.size(), 2u);
    // The hook's push is visible in the very snapshot that follows it.
    EXPECT_NE(lines[0].find("\"mirrored\": 1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"mirrored\": 2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Exporter, FormatForPath) {
    EXPECT_EQ(obs::format_for_path("metrics.prom"),
              obs::ExportFormat::Prometheus);
    EXPECT_EQ(obs::format_for_path("m.prometheus"),
              obs::ExportFormat::Prometheus);
    EXPECT_EQ(obs::format_for_path("metrics.txt"),
              obs::ExportFormat::Prometheus);
    EXPECT_EQ(obs::format_for_path("metrics.jsonl"),
              obs::ExportFormat::Jsonl);
    EXPECT_EQ(obs::format_for_path("metrics.json"),
              obs::ExportFormat::Jsonl);
    EXPECT_EQ(obs::format_for_path("noext"), obs::ExportFormat::Jsonl);
}

}  // namespace
