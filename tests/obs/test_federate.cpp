// Cross-rank metric federation: label insertion identity, the wire
// round-trip (including hostile frames), the pure merge/skew math, and the
// collective federate() across every grid shape of the shared sweep —
// capped by an end-to-end check that rank 0's /metrics endpoint serves the
// federated view with per-rank labels and imbalance gauges on a 2x3 world.
#include "obs/federate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "common/grid_shapes.hpp"
#include "obs/introspection.hpp"
#include "obs/metrics.hpp"
#include "par/comm.hpp"

namespace obs = dsg::obs;
namespace par = dsg::par;

namespace {

// ---------------------------------------------------------------------------
// with_label: the registry's render identity, preserved
// ---------------------------------------------------------------------------

TEST(WithLabel, InsertsInSortedPosition) {
    EXPECT_EQ(obs::with_label("m", "rank", "3"), "m{rank=3}");
    EXPECT_EQ(obs::with_label("m{a=1,z=2}", "rank", "3"),
              "m{a=1,rank=3,z=2}");
    EXPECT_EQ(obs::with_label("m{z=2}", "aaa", "1"), "m{aaa=1,z=2}");
}

TEST(WithLabel, ExistingLabelWins) {
    EXPECT_EQ(obs::with_label("m{rank=7}", "rank", "3"), "m{rank=7}");
}

// ---------------------------------------------------------------------------
// Wire round-trip
// ---------------------------------------------------------------------------

obs::MetricsSnapshot odd_snapshot() {
    obs::MetricsSnapshot snap;
    snap.ts_ms = 1234567;
    snap.counters.emplace_back("plain", 42u);
    snap.counters.emplace_back("labelled{a=x,b=y}", 0u);
    snap.counters.emplace_back("weird{path=/tmp/a b,q=\"quoted\"}", 9u);
    snap.gauges.emplace_back("negative", -3.25);
    snap.gauges.emplace_back("", 1.0);  // empty key survives the wire
    obs::HistogramSummary h;
    h.count = 10;
    h.mean = 1.5;
    h.p50 = 1.0;
    h.p99 = 3.0;
    h.max = 4.0;
    snap.histograms.emplace_back("lat_ns{class=k-hop}", h);
    return snap;
}

TEST(SnapshotWire, RoundTripsEveryField) {
    const obs::MetricsSnapshot in = odd_snapshot();
    const obs::MetricsSnapshot out =
        obs::deserialize_snapshot(obs::serialize_snapshot(in));
    EXPECT_EQ(out.ts_ms, in.ts_ms);
    ASSERT_EQ(out.counters.size(), in.counters.size());
    for (std::size_t k = 0; k < in.counters.size(); ++k)
        EXPECT_EQ(out.counters[k], in.counters[k]) << k;
    ASSERT_EQ(out.gauges.size(), in.gauges.size());
    for (std::size_t k = 0; k < in.gauges.size(); ++k)
        EXPECT_EQ(out.gauges[k], in.gauges[k]) << k;
    ASSERT_EQ(out.histograms.size(), in.histograms.size());
    EXPECT_EQ(out.histograms[0].first, in.histograms[0].first);
    EXPECT_EQ(out.histograms[0].second.count, 10u);
    EXPECT_EQ(out.histograms[0].second.p99, 3.0);
}

TEST(SnapshotWire, TruncatedFrameThrows) {
    const par::Buffer buf = obs::serialize_snapshot(odd_snapshot());
    const par::Buffer cut(
        buf.begin(),
        buf.begin() + static_cast<std::ptrdiff_t>(buf.size() / 2));
    EXPECT_THROW((void)obs::deserialize_snapshot(cut),
                 par::TruncatedBufferError);
}

TEST(SnapshotWire, WrongMagicThrows) {
    par::Buffer buf = obs::serialize_snapshot(odd_snapshot());
    std::uint32_t bad = 0xdeadbeef;
    std::memcpy(buf.data(), &bad, sizeof bad);
    EXPECT_THROW((void)obs::deserialize_snapshot(buf), std::runtime_error);
}

// ---------------------------------------------------------------------------
// The merge/skew math (pure)
// ---------------------------------------------------------------------------

double gauge_value(const obs::MetricsSnapshot& snap, const std::string& key) {
    for (const auto& [k, v] : snap.gauges)
        if (k == key) return v;
    ADD_FAILURE() << "gauge not found: " << key;
    return -1.0;
}

TEST(Merge, RankLabelsAndSkewGauges) {
    obs::MetricsSnapshot r0, r1, r2;
    r0.counters.emplace_back("ops", 10u);
    r1.counters.emplace_back("ops", 30u);
    r2.counters.emplace_back("ops", 20u);
    r0.gauges.emplace_back("depth{q=a}", 4.0);
    r1.gauges.emplace_back("depth{q=a}", 4.0);
    r2.gauges.emplace_back("depth{q=a}", 4.0);
    const obs::MetricsSnapshot fed =
        obs::merge_rank_snapshots({r0, r1, r2});

    std::vector<std::string> counter_keys;
    counter_keys.reserve(fed.counters.size());
    for (const auto& [k, v] : fed.counters) counter_keys.push_back(k);
    EXPECT_EQ(counter_keys, (std::vector<std::string>{
                                "ops{rank=0}", "ops{rank=1}", "ops{rank=2}"}));

    // max/mean over {10, 30, 20}: mean 20, imbalance 1.5.
    EXPECT_DOUBLE_EQ(gauge_value(fed, "ops_rank_max"), 30.0);
    EXPECT_DOUBLE_EQ(gauge_value(fed, "ops_rank_min"), 10.0);
    EXPECT_DOUBLE_EQ(gauge_value(fed, "ops_rank_imbalance"), 1.5);
    // A perfectly even family reads exactly 1.0, labels preserved.
    EXPECT_DOUBLE_EQ(gauge_value(fed, "depth_rank_imbalance{q=a}"), 1.0);
    EXPECT_DOUBLE_EQ(gauge_value(fed, "depth{q=a,rank=1}"), 4.0);
    EXPECT_DOUBLE_EQ(gauge_value(fed, "cluster_ranks"), 3.0);
}

TEST(Merge, AllZeroFamilyIsBalancedNotInfinite) {
    obs::MetricsSnapshot r0, r1;
    r0.counters.emplace_back("idle", 0u);
    r1.counters.emplace_back("idle", 0u);
    const obs::MetricsSnapshot fed = obs::merge_rank_snapshots({r0, r1});
    EXPECT_DOUBLE_EQ(gauge_value(fed, "idle_rank_imbalance"), 1.0);
}

TEST(Merge, OutputIsSortedByKey) {
    obs::MetricsSnapshot r0, r1;
    r0.gauges.emplace_back("zz", 1.0);
    r0.gauges.emplace_back("aa", 1.0);
    r1.gauges.emplace_back("zz", 2.0);
    r1.gauges.emplace_back("aa", 2.0);
    const obs::MetricsSnapshot fed = obs::merge_rank_snapshots({r0, r1});
    for (std::size_t k = 1; k < fed.gauges.size(); ++k)
        EXPECT_LT(fed.gauges[k - 1].first, fed.gauges[k].first) << k;
}

// ---------------------------------------------------------------------------
// federate(): the collective, across the shared grid-shape sweep
// ---------------------------------------------------------------------------

class FederateG : public ::testing::TestWithParam<dsg::test::GridCase> {};

TEST_P(FederateG, EveryRankGetsTheIdenticalClusterView) {
    const auto c = GetParam();
    std::vector<std::string> rendered(static_cast<std::size_t>(c.p()));
    par::run_world(c.p(), [&](par::Comm& comm) {
        obs::MetricsSnapshot local;
        local.gauges.emplace_back(
            "work", static_cast<double>(comm.rank() + 1));
        local.counters.emplace_back("fixed", 5u);
        const obs::MetricsSnapshot fed = obs::federate(comm, local);
        rendered[static_cast<std::size_t>(comm.rank())] =
            fed.to_prometheus();

        // Per-rank labels for EVERY rank of the world, plus skew gauges.
        for (int r = 0; r < comm.size(); ++r) {
            const std::string key = "work{rank=" + std::to_string(r) + '}';
            EXPECT_DOUBLE_EQ(gauge_value(fed, key),
                             static_cast<double>(r + 1));
        }
        EXPECT_DOUBLE_EQ(gauge_value(fed, "cluster_ranks"),
                         static_cast<double>(comm.size()));
        // work over {1..p}: mean (p+1)/2, max p -> imbalance 2p/(p+1).
        const double p = static_cast<double>(comm.size());
        EXPECT_NEAR(gauge_value(fed, "work_rank_imbalance"),
                    2.0 * p / (p + 1.0), 1e-12);
        EXPECT_DOUBLE_EQ(gauge_value(fed, "fixed_rank_imbalance"), 1.0);
    });
    // The merged view is identical on every rank (it must be: rank 0
    // serves it for the whole cluster).
    for (std::size_t r = 1; r < rendered.size(); ++r)
        EXPECT_EQ(rendered[r], rendered[0]) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(GridShapes, FederateG,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

// End-to-end on the rectangular 2x3 world (and the rest of the sweep):
// rank 0 runs a real IntrospectionServer whose /metrics provider serves
// the federated snapshot; a loopback scrape must carry all p rank labels
// and the imbalance gauges — the acceptance check of the ISSUE.
class FederatedHttpG : public ::testing::TestWithParam<dsg::test::GridCase> {
};

TEST_P(FederatedHttpG, Rank0ServesAllRanksOverHttp) {
    const auto c = GetParam();
    std::string scraped;
    par::run_world(c.p(), [&](par::Comm& comm) {
        obs::MetricsSnapshot local;
        local.gauges.emplace_back(
            "stream_ops_applied", 100.0 * (comm.rank() + 1));
        const obs::MetricsSnapshot fed = obs::federate(comm, local);

        if (comm.rank() == 0) {
            obs::IntrospectionServer server;
            obs::IntrospectionServer::Config cfg;
            cfg.metrics_provider = [&fed] { return fed; };
            server.start(std::move(cfg));
            scraped = obs::http_fetch(server.port(), "/metrics");
            server.stop();
        }
        comm.barrier();  // ranks > 0 wait out the scrape
    });
    for (int r = 0; r < c.p(); ++r) {
        const std::string label = "rank=\"" + std::to_string(r) + "\"";
        EXPECT_NE(scraped.find("stream_ops_applied{" + label + "}"),
                  std::string::npos)
            << "missing " << label << " in:\n"
            << scraped;
    }
    EXPECT_NE(scraped.find("stream_ops_applied_rank_imbalance"),
              std::string::npos);
    EXPECT_NE(scraped.find("# TYPE stream_ops_applied_rank_imbalance gauge"),
              std::string::npos);
    EXPECT_NE(scraped.find("cluster_ranks " + std::to_string(c.p())),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, FederatedHttpG,
    ::testing::ValuesIn(dsg::test::grid_shape_cases_sync_only()),
    dsg::test::grid_case_name);

}  // namespace
