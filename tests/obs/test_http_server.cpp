// The embedded HTTP server (the introspection plane's transport):
// routing/status codes over real loopback sockets, the robustness matrix
// (malformed request lines, oversized headers, byte-at-a-time partial
// reads, premature peer close), large-body short-write handling, and
// concurrent scrapers hammering one server (run under TSan via the obs CI
// label).
#include "obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace obs = dsg::obs;

namespace {

/// Raw loopback client for the malformed-input tests: connects, sends
/// `payload` verbatim (optionally in 1-byte chunks), reads to EOF.
std::string raw_exchange(std::uint16_t port, const std::string& payload,
                         bool byte_at_a_time = false,
                         bool close_after_send = true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    if (byte_at_a_time) {
        for (const char c : payload) {
            if (::send(fd, &c, 1, MSG_NOSIGNAL) != 1) break;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    } else if (!payload.empty()) {
        (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
    }
    std::string out;
    if (close_after_send) {
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) break;
            out.append(buf, static_cast<std::size_t>(n));
        }
    }
    ::close(fd);
    return out;
}

std::string status_line(const std::string& response) {
    const auto eol = response.find("\r\n");
    return eol == std::string::npos ? response : response.substr(0, eol);
}

/// One running server with a couple of routes; every test gets a fresh
/// ephemeral port, so suites never collide.
struct Fixture {
    obs::HttpServer server;
    std::atomic<int> hits{0};

    explicit Fixture(obs::HttpServer::Config cfg = {}) {
        server.handle("/hello", [this](const obs::HttpRequest&) {
            hits.fetch_add(1, std::memory_order_relaxed);
            obs::HttpResponse resp;
            resp.body = "hi\n";
            return resp;
        });
        server.handle("/echo", [](const obs::HttpRequest& req) {
            obs::HttpResponse resp;
            resp.body = std::string(req.param("q", "<absent>")) + "\n";
            return resp;
        });
        server.handle("/boom", [](const obs::HttpRequest&) -> obs::HttpResponse {
            throw std::runtime_error("handler exploded");
        });
        server.start(cfg);
    }
};

TEST(HttpServer, RoutesOnAnEphemeralPort) {
    Fixture fx;
    ASSERT_TRUE(fx.server.running());
    ASSERT_NE(fx.server.port(), 0);
    const std::string resp = obs::http_fetch(fx.server.port(), "/hello");
    EXPECT_EQ(status_line(resp), "HTTP/1.1 200 OK");
    EXPECT_NE(resp.find("\r\n\r\nhi\n"), std::string::npos);
    EXPECT_EQ(fx.hits.load(), 1);
    EXPECT_GE(fx.server.served(), 1u);
}

TEST(HttpServer, UnknownPathIs404AndWrongMethodIs405) {
    Fixture fx;
    EXPECT_EQ(status_line(obs::http_fetch(fx.server.port(), "/nope")),
              "HTTP/1.1 404 Not Found");
    const std::string post = raw_exchange(
        fx.server.port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(status_line(post), "HTTP/1.1 405 Method Not Allowed");
    EXPECT_EQ(fx.hits.load(), 0);
}

TEST(HttpServer, HeadAnswersWithoutABody) {
    Fixture fx;
    const std::string resp = raw_exchange(
        fx.server.port(), "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(status_line(resp), "HTTP/1.1 200 OK");
    // Framing headers survive; the body does not.
    EXPECT_NE(resp.find("Content-Length: 3"), std::string::npos);
    EXPECT_EQ(resp.find("hi\n"), std::string::npos);
}

TEST(HttpServer, QueryStringSplitsIntoParams) {
    Fixture fx;
    const std::string resp =
        obs::http_fetch(fx.server.port(), "/echo?q=value&other=1");
    EXPECT_NE(resp.find("\r\n\r\nvalue\n"), std::string::npos);
    const std::string missing = obs::http_fetch(fx.server.port(), "/echo");
    EXPECT_NE(missing.find("<absent>"), std::string::npos);
}

TEST(HttpServer, HandlerExceptionsBecome500) {
    Fixture fx;
    EXPECT_EQ(status_line(obs::http_fetch(fx.server.port(), "/boom")),
              "HTTP/1.1 500 Internal Server Error");
    // The worker survives; the next request is served normally.
    EXPECT_EQ(status_line(obs::http_fetch(fx.server.port(), "/hello")),
              "HTTP/1.1 200 OK");
}

// ---------------------------------------------------------------------------
// Robustness: garbage in, bounded and specific errors out
// ---------------------------------------------------------------------------

TEST(HttpServer, MalformedRequestLineIs400) {
    Fixture fx;
    for (const char* garbage :
         {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /hello\r\n\r\n",
          "GET /hello SMTP/1.0\r\n\r\n", "\r\n\r\n"}) {
        const std::string resp = raw_exchange(fx.server.port(), garbage);
        EXPECT_EQ(status_line(resp), "HTTP/1.1 400 Bad Request") << garbage;
    }
    EXPECT_GE(fx.server.rejected(), 5u);
    EXPECT_EQ(fx.hits.load(), 0);
}

TEST(HttpServer, OversizedHeadersAre431) {
    obs::HttpServer::Config cfg;
    cfg.max_request_bytes = 1024;
    Fixture fx(cfg);
    std::string req = "GET /hello HTTP/1.1\r\n";
    req += "X-Padding: " + std::string(4096, 'x') + "\r\n\r\n";
    const std::string resp = raw_exchange(fx.server.port(), req);
    EXPECT_EQ(status_line(resp),
              "HTTP/1.1 431 Request Header Fields Too Large");
    EXPECT_EQ(fx.hits.load(), 0);
}

TEST(HttpServer, PartialByteAtATimeReadsStillParse) {
    Fixture fx;
    const std::string resp = raw_exchange(
        fx.server.port(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n",
        /*byte_at_a_time=*/true);
    EXPECT_EQ(status_line(resp), "HTTP/1.1 200 OK");
    EXPECT_EQ(fx.hits.load(), 1);
}

TEST(HttpServer, PrematureCloseLeavesTheServerServing) {
    Fixture fx;
    // Half a request line, then an immediate close, several times over.
    for (int k = 0; k < 8; ++k)
        (void)raw_exchange(fx.server.port(), "GET /hel",
                           /*byte_at_a_time=*/false,
                           /*close_after_send=*/false);
    // And one bare connect-then-close with no bytes at all.
    (void)raw_exchange(fx.server.port(), "",
                       /*byte_at_a_time=*/false, /*close_after_send=*/false);
    const std::string resp = obs::http_fetch(fx.server.port(), "/hello");
    EXPECT_EQ(status_line(resp), "HTTP/1.1 200 OK");
}

TEST(HttpServer, LargeBodiesSurviveShortWrites) {
    obs::HttpServer server;
    const std::string big(4 * 1024 * 1024, 'z');
    server.handle("/big", [&big](const obs::HttpRequest&) {
        obs::HttpResponse resp;
        resp.body = big;
        return resp;
    });
    server.start({});
    const std::string resp = obs::http_fetch(server.port(), "/big",
                                             /*timeout_ms=*/30'000);
    const auto split = resp.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    EXPECT_EQ(resp.size() - split - 4, big.size());
    EXPECT_EQ(resp.compare(split + 4, std::string::npos, big), 0);
}

TEST(HttpServer, BindConflictThrows) {
    Fixture fx;
    obs::HttpServer second;
    obs::HttpServer::Config cfg;
    cfg.port = fx.server.port();
    EXPECT_THROW(second.start(cfg), std::runtime_error);
    EXPECT_FALSE(second.running());
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
    obs::HttpServer server;
    server.handle("/ping", [](const obs::HttpRequest&) {
        return obs::HttpResponse{200, "text/plain", "pong"};
    });
    server.start({});
    const std::uint16_t first_port = server.port();
    EXPECT_NE(obs::http_fetch(first_port, "/ping").find("pong"),
              std::string::npos);
    server.stop();
    server.stop();  // second stop: no-op, no crash
    EXPECT_FALSE(server.running());
    EXPECT_EQ(obs::http_fetch(first_port, "/ping"), "");  // really down
    server.start({});
    EXPECT_TRUE(server.running());
    EXPECT_NE(obs::http_fetch(server.port(), "/ping").find("pong"),
              std::string::npos);
}

// Exercised under TSan by the obs CI label: many clients, one server.
TEST(HttpServer, ConcurrentScrapersAllGetAnswers) {
    Fixture fx;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 25;
    std::atomic<int> ok{0};
    std::vector<std::thread> scrapers;
    scrapers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        scrapers.emplace_back([&] {
            for (int k = 0; k < kPerThread; ++k) {
                const std::string resp =
                    obs::http_fetch(fx.server.port(), "/hello");
                if (status_line(resp) == "HTTP/1.1 200 OK")
                    ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto& th : scrapers) th.join();
    EXPECT_EQ(ok.load(), kThreads * kPerThread);
    EXPECT_EQ(fx.hits.load(), kThreads * kPerThread);
    EXPECT_GE(fx.server.served(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
