// The introspection server over real loopback HTTP: endpoint content types
// and bodies, readiness derived from the EventLog fold plus the manual
// gate, the /events incremental cursor, concurrent scrapers racing registry
// writers (TSan via the obs CI label), and the shutdown-ordering contract
// (stop() drains in-flight requests before the handler-captured state may
// be torn down).
#include "obs/introspection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"

namespace obs = dsg::obs;

namespace {

std::string status_line(const std::string& response) {
    const auto eol = response.find("\r\n");
    return eol == std::string::npos ? response : response.substr(0, eol);
}

std::string body_of(const std::string& response) {
    const auto split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
}

bool has_header(const std::string& response, const std::string& header) {
    return response.find("\r\n" + header + "\r\n") != std::string::npos;
}

obs::Event rule_event(const std::string& rule, obs::Severity sev) {
    obs::Event e;
    e.severity = sev;
    e.rule = rule;
    e.metric = "m";
    e.message = rule;
    return e;
}

/// Server bound to a private registry + event log (never the globals, so
/// tests cannot interfere with each other or the process).
struct Fixture {
    obs::Registry reg;
    obs::EventLog log;
    obs::IntrospectionServer server;

    explicit Fixture(bool ready = true) {
        reg.counter("probe_total", {{"kind", "x"}}).add(7);
        reg.gauge("probe_depth").set(3);
        obs::IntrospectionServer::Config cfg;
        cfg.registry = &reg;
        cfg.events = &log;
        cfg.ready = ready;
        server.start(std::move(cfg));
    }

    [[nodiscard]] std::string get(const std::string& target) const {
        return obs::http_fetch(server.port(), target);
    }
};

TEST(Introspection, MetricsServesPrometheusWithTheExactContentType) {
    if (obs::compiled_noop())
        GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)";
    Fixture fx;
    const std::string resp = fx.get("/metrics");
    EXPECT_EQ(status_line(resp), "HTTP/1.1 200 OK");
    EXPECT_TRUE(
        has_header(resp, "Content-Type: text/plain; version=0.0.4"))
        << resp;
    const std::string body = body_of(resp);
    EXPECT_NE(body.find("# TYPE probe_total counter"), std::string::npos);
    EXPECT_NE(body.find("probe_total{kind=\"x\"} 7"), std::string::npos);
    EXPECT_NE(body.find("probe_depth 3"), std::string::npos);
}

TEST(Introspection, MetricsJsonAndHealthzAnswer) {
    if (obs::compiled_noop())
        GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)";
    Fixture fx;
    const std::string json = fx.get("/metrics.json");
    EXPECT_EQ(status_line(json), "HTTP/1.1 200 OK");
    EXPECT_NE(body_of(json).find("\"probe_total{kind=x}\": 7"),
              std::string::npos);
    EXPECT_NE(body_of(json).find("\"ts_ms\""), std::string::npos);
    const std::string health = fx.get("/healthz");
    EXPECT_EQ(status_line(health), "HTTP/1.1 200 OK");
    EXPECT_EQ(body_of(health), "ok\n");
}

TEST(Introspection, MetricsProviderOverridesTheRegistry) {
    Fixture fx;
    fx.server.stop();
    obs::IntrospectionServer::Config cfg;
    cfg.registry = &fx.reg;
    cfg.events = &fx.log;
    cfg.metrics_provider = [] {
        obs::MetricsSnapshot snap;
        snap.gauges.emplace_back("synthetic_gauge", 42.0);
        return snap;
    };
    fx.server.start(std::move(cfg));
    const std::string body = body_of(fx.get("/metrics"));
    EXPECT_NE(body.find("synthetic_gauge 42"), std::string::npos);
    EXPECT_EQ(body.find("probe_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Readiness: the EventLog fold AND the manual gate
// ---------------------------------------------------------------------------

TEST(Introspection, ReadyzFlipsOnCriticalFiringAndClear) {
    Fixture fx;
    EXPECT_EQ(status_line(fx.get("/readyz")), "HTTP/1.1 200 OK");

    // A Critical firing takes the rule (and readiness) down...
    fx.log.append(rule_event("stall", obs::Severity::Critical));
    const std::string down = fx.get("/readyz");
    EXPECT_EQ(status_line(down), "HTTP/1.1 503 Service Unavailable");
    EXPECT_NE(body_of(down).find("stall"), std::string::npos);
    EXPECT_EQ(fx.server.critical_rules(),
              std::vector<std::string>{"stall"});

    // ...a Warning firing of another rule does not...
    fx.log.append(rule_event("minor", obs::Severity::Warning));
    EXPECT_EQ(status_line(fx.get("/readyz")),
              "HTTP/1.1 503 Service Unavailable");  // stall still down

    // ...and the rule's clear (an Info transition) brings it back.
    fx.log.append(rule_event("stall", obs::Severity::Info));
    EXPECT_EQ(status_line(fx.get("/readyz")), "HTTP/1.1 200 OK");
    EXPECT_TRUE(fx.server.critical_rules().empty());
}

TEST(Introspection, ManualGateHolds503UntilReleased) {
    Fixture fx(/*ready=*/false);  // e.g. recovery replay in progress
    const std::string down = fx.get("/readyz");
    EXPECT_EQ(status_line(down), "HTTP/1.1 503 Service Unavailable");
    EXPECT_NE(body_of(down).find("startup/recovery"), std::string::npos);
    fx.server.set_ready(true);
    EXPECT_EQ(status_line(fx.get("/readyz")), "HTTP/1.1 200 OK");
    // The gate AND-s with the fold: a Critical firing still wins.
    fx.log.append(rule_event("stall", obs::Severity::Critical));
    EXPECT_EQ(status_line(fx.get("/readyz")),
              "HTTP/1.1 503 Service Unavailable");
}

TEST(Introspection, StatusReportsReadinessAndCriticalRules) {
    Fixture fx;
    std::string body = body_of(fx.get("/status"));
    EXPECT_NE(body.find("\"ready\": true"), std::string::npos);
    EXPECT_NE(body.find("\"critical_rules\": []"), std::string::npos);
    fx.log.append(rule_event("stall", obs::Severity::Critical));
    body = body_of(fx.get("/status"));
    EXPECT_NE(body.find("\"ready\": false"), std::string::npos);
    EXPECT_NE(body.find("\"critical_rules\": [\"stall\"]"),
              std::string::npos);
}

TEST(Introspection, StatusMergesCallerFields) {
    Fixture fx;
    fx.server.stop();
    obs::IntrospectionServer::Config cfg;
    cfg.registry = &fx.reg;
    cfg.events = &fx.log;
    cfg.status_fields = [] {
        return std::string("\"engine_version\": 99");
    };
    fx.server.start(std::move(cfg));
    const std::string body = body_of(fx.get("/status"));
    EXPECT_NE(body.find("\"engine_version\": 99"), std::string::npos);
    EXPECT_NE(body.find("\"ready\": true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// /events: the incremental cursor
// ---------------------------------------------------------------------------

TEST(Introspection, EventsTailAndSinceCursor) {
    Fixture fx;
    fx.log.append(rule_event("a", obs::Severity::Warning));
    fx.log.append(rule_event("b", obs::Severity::Warning));
    fx.log.append(rule_event("c", obs::Severity::Info));

    const std::string all = body_of(fx.get("/events"));
    EXPECT_NE(all.find("\"rule\": \"a\""), std::string::npos);
    EXPECT_NE(all.find("\"rule\": \"c\""), std::string::npos);

    // seq > 2: only the third event comes back.
    const std::string tail = body_of(fx.get("/events?since=2"));
    EXPECT_EQ(tail.find("\"rule\": \"a\""), std::string::npos);
    EXPECT_EQ(tail.find("\"rule\": \"b\""), std::string::npos);
    EXPECT_NE(tail.find("\"rule\": \"c\""), std::string::npos);

    EXPECT_EQ(status_line(fx.get("/events?since=banana")),
              "HTTP/1.1 400 Bad Request");
    EXPECT_EQ(status_line(fx.get("/events?since=12banana")),
              "HTTP/1.1 400 Bad Request");
}

TEST(Introspection, TraceAndFlightAnswerJson) {
    Fixture fx;
    const std::string trace = body_of(fx.get("/trace"));
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    const std::string flight = body_of(fx.get("/flight"));
    EXPECT_EQ(flight.find('{'), 0u);  // default worst-K body is JSON
}

// ---------------------------------------------------------------------------
// Concurrency and shutdown ordering (TSan via the obs CI label)
// ---------------------------------------------------------------------------

TEST(Introspection, ScrapersRaceRegistryWritersSafely) {
    if (obs::compiled_noop())
        GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)";
    Fixture fx;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int k = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            fx.reg.counter("probe_total", {{"kind", "x"}}).add(1);
            fx.reg.gauge("probe_depth").set(++k);
            fx.reg.histogram("probe_ns").record(static_cast<std::uint64_t>(k));
        }
    });
    std::vector<std::thread> scrapers;
    scrapers.reserve(4);
    std::atomic<int> ok{0};
    for (int t = 0; t < 4; ++t)
        scrapers.emplace_back([&] {
            for (int k = 0; k < 25; ++k) {
                const char* target = (k % 2) != 0 ? "/metrics"
                                                  : "/metrics.json";
                if (status_line(fx.get(target)) == "HTTP/1.1 200 OK")
                    ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto& th : scrapers) th.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(ok.load(), 100);
}

TEST(Introspection, StopDrainsInFlightRequestsBeforeReturning) {
    // The ordering contract teardown code relies on: a handler reads state
    // (here a callback gauge) that the caller destroys right after stop()
    // returns. stop() must therefore finish every accepted request first.
    auto reg = std::make_unique<obs::Registry>();
    std::atomic<bool> in_handler{false};
    reg->set_callback("slow_gauge", {}, [&in_handler] {
        in_handler.store(true, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return 1.0;
    });

    obs::IntrospectionServer server;
    obs::IntrospectionServer::Config cfg;
    cfg.registry = reg.get();
    cfg.events = nullptr;  // global log is fine; nothing is appended
    server.start(std::move(cfg));
    const std::uint16_t port = server.port();

    std::string response;
    std::thread scraper([&] {
        response = obs::http_fetch(port, "/metrics", /*timeout_ms=*/10'000);
    });
    // Wait until the request is genuinely inside the slow callback...
    while (!in_handler.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // ...then stop. Once stop() returns, the registry may die.
    server.stop();
    server.stop();  // idempotent
    reg.reset();    // would be a use-after-free if stop() didn't drain
    scraper.join();
    EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
    EXPECT_NE(response.find("slow_gauge"), std::string::npos);
}

TEST(Introspection, ExporterAndServerStopOrderIsSafe) {
    // The example's teardown order: introspection server first, then the
    // exporter, then the instruments — each stop idempotent.
    obs::Registry reg;
    reg.gauge("g").set(1);

    obs::MetricsExporter::Config ecfg;
    ecfg.path = ::testing::TempDir() + "dsg_introspection_order.jsonl";
    ecfg.interval_ms = 60'000;
    obs::MetricsExporter exporter(reg, std::move(ecfg));

    obs::IntrospectionServer server;
    obs::IntrospectionServer::Config cfg;
    cfg.registry = &reg;
    server.start(std::move(cfg));
    EXPECT_EQ(status_line(obs::http_fetch(server.port(), "/healthz")),
              "HTTP/1.1 200 OK");

    server.stop();
    server.stop();
    exporter.stop();
    exporter.stop();  // double-stop: no second write, no crash
    std::remove((::testing::TempDir() + "dsg_introspection_order.jsonl")
                    .c_str());
}

}  // namespace
