// The metrics registry: histogram bucket math and quantile error bounds
// against exact sorted references, concurrent increments and shard merges
// (run under TSan in CI), snapshot-while-writing consistency, and the
// rendering formats.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace obs = dsg::obs;

namespace {

// Recording is compiled out under -DDSG_OBS_NOOP (the overhead-gate
// baseline build); tests that depend on recorded values skip there.
#define DSG_SKIP_IF_NOOP()                                   \
    if (obs::compiled_noop())                                \
    GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)"

// ---------------------------------------------------------------------------
// Bucket scheme
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, ExactBelowSixteen) {
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(obs::Histogram::bucket_of(v), v);
        EXPECT_EQ(obs::Histogram::bucket_upper(v), v);
    }
}

TEST(HistogramBuckets, UpperBoundsAreTightAndMonotone) {
    // Every value maps to a bucket whose upper bound is >= the value, and
    // bucket upper bounds strictly increase with the index.
    std::uint64_t prev_upper = 0;
    for (std::size_t idx = 0; idx < obs::Histogram::kBuckets; ++idx) {
        const std::uint64_t upper = obs::Histogram::bucket_upper(idx);
        if (idx > 0) {
            EXPECT_GT(upper, prev_upper) << "idx=" << idx;
        }
        prev_upper = upper;
        // The upper bound itself must map back into the same bucket.
        EXPECT_EQ(obs::Histogram::bucket_of(upper), idx) << "idx=" << idx;
    }
}

TEST(HistogramBuckets, ValuesMapWithinBound) {
    std::mt19937_64 rng(7);
    for (int k = 0; k < 20000; ++k) {
        const int bits = static_cast<int>(rng() % 63) + 1;
        const std::uint64_t v = rng() >> (64 - bits);
        const std::size_t idx = obs::Histogram::bucket_of(v);
        ASSERT_LT(idx, obs::Histogram::kBuckets) << "v=" << v;
        EXPECT_LE(v, obs::Histogram::bucket_upper(idx)) << "v=" << v;
        if (idx > 0) {
            EXPECT_GT(v, obs::Histogram::bucket_upper(idx - 1)) << "v=" << v;
        }
    }
}

TEST(HistogramBuckets, HugeValuesStayInRange) {
    EXPECT_LT(obs::Histogram::bucket_of(~std::uint64_t{0}),
              obs::Histogram::kBuckets);
    EXPECT_LT(obs::Histogram::bucket_of(std::uint64_t{1} << 63),
              obs::Histogram::kBuckets);
}

// ---------------------------------------------------------------------------
// Quantile error vs exact sorted reference
// ---------------------------------------------------------------------------

double exact_quantile(std::vector<std::uint64_t>& sorted, double q) {
    const auto rank = static_cast<std::size_t>(std::max<double>(
        1.0, q * static_cast<double>(sorted.size()) + 0.5));
    return static_cast<double>(sorted[std::min(rank, sorted.size()) - 1]);
}

/// The histogram keeps 3 mantissa bits, so a quantile estimate (the bucket's
/// upper bound) exceeds the true quantile by at most a factor of 1/8 plus
/// one representable step. Checked across three very different shapes.
void check_quantiles(const std::vector<std::uint64_t>& values,
                     const char* label) {
    obs::Histogram h;
    for (const auto v : values) h.record(v);
    auto sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const auto reading = h.read();
    ASSERT_EQ(reading.count, values.size());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = exact_quantile(sorted, q);
        const double est = reading.quantile(q);
        EXPECT_GE(est, exact) << label << " q=" << q;  // never undershoots
        EXPECT_LE(est, exact * (1.0 + 1.0 / 8.0) + 1.0)
            << label << " q=" << q;
    }
    // Max: upper bound of the largest value's bucket.
    EXPECT_GE(reading.summary().max, static_cast<double>(sorted.back()));
    // Sum is exact (no bucketing error).
    std::uint64_t sum = 0;
    for (const auto v : values) sum += v;
    EXPECT_EQ(reading.sum, sum);
}

TEST(HistogramQuantiles, UniformWithinErrorBound) {
    DSG_SKIP_IF_NOOP();
    std::mt19937_64 rng(11);
    std::vector<std::uint64_t> values(20000);
    for (auto& v : values) v = rng() % 1'000'000;
    check_quantiles(values, "uniform");
}

TEST(HistogramQuantiles, LogNormalWithinErrorBound) {
    DSG_SKIP_IF_NOOP();
    std::mt19937_64 rng(13);
    std::lognormal_distribution<double> dist(10.0, 2.0);  // latency-shaped
    std::vector<std::uint64_t> values(20000);
    for (auto& v : values) v = static_cast<std::uint64_t>(dist(rng));
    check_quantiles(values, "lognormal");
}

TEST(HistogramQuantiles, SmallExactValues) {
    DSG_SKIP_IF_NOOP();
    // Everything below 16 is exact, so quantiles are exact too.
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 16; ++v)
        for (int k = 0; k < 100; ++k) values.push_back(v);
    obs::Histogram h;
    for (const auto v : values) h.record(v);
    const auto reading = h.read();
    EXPECT_EQ(reading.quantile(0.5), 7.0);
    EXPECT_EQ(reading.quantile(1.0), 15.0);
    EXPECT_EQ(reading.summary().max, 15.0);
}

TEST(HistogramQuantiles, EmptyReadsZero) {
    obs::Histogram h;
    const auto reading = h.read();
    EXPECT_EQ(reading.count, 0u);
    EXPECT_EQ(reading.quantile(0.5), 0.0);
    EXPECT_EQ(reading.mean(), 0.0);
    EXPECT_EQ(reading.summary().max, 0.0);
}

TEST(HistogramQuantiles, EmptyReadingNeverProducesNaN) {
    // The documented degenerate contract: a zero-count reading answers 0.0
    // for EVERY q — including the edges — never NaN or a division blowup.
    obs::Histogram h;
    const auto reading = h.read();
    for (const double q : {0.0, 0.001, 0.5, 0.999, 1.0}) {
        const double est = reading.quantile(q);
        EXPECT_FALSE(std::isnan(est)) << "q=" << q;
        EXPECT_EQ(est, 0.0) << "q=" << q;
    }
    const auto s = reading.summary();
    EXPECT_FALSE(std::isnan(s.mean));
    EXPECT_FALSE(std::isnan(s.p50));
    EXPECT_FALSE(std::isnan(s.p999));
}

TEST(HistogramQuantiles, SingleBucketCollapsesAllQuantiles) {
    DSG_SKIP_IF_NOOP();
    // Every sample in one bucket: all quantiles are that bucket's upper
    // bound (p50 == p999 == max), and nothing is NaN. This pins the other
    // documented degenerate case in Histogram::Reading::quantile.
    obs::Histogram h;
    for (int k = 0; k < 1000; ++k) h.record(42);
    const auto reading = h.read();
    const double upper = static_cast<double>(
        obs::Histogram::bucket_upper(obs::Histogram::bucket_of(42)));
    for (const double q : {0.0, 0.001, 0.5, 0.99, 0.999, 1.0}) {
        const double est = reading.quantile(q);
        EXPECT_FALSE(std::isnan(est)) << "q=" << q;
        EXPECT_EQ(est, upper) << "q=" << q;
    }
    const auto s = reading.summary();
    EXPECT_EQ(s.p50, s.p999);
    EXPECT_EQ(s.p999, s.max);
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan by the obs CI label)
// ---------------------------------------------------------------------------

TEST(Concurrency, CountersAndGaugesFromManyThreads) {
    DSG_SKIP_IF_NOOP();
    obs::Registry reg;
    auto& counter = reg.counter("ops_total");
    auto& gauge = reg.gauge("depth");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int k = 0; k < kPerThread; ++k) {
                counter.add(1);
                gauge.set(t);
            }
        });
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_GE(gauge.value(), 0);
    EXPECT_LT(gauge.value(), kThreads);
}

TEST(Concurrency, HistogramShardsMergeExactCounts) {
    DSG_SKIP_IF_NOOP();
    obs::Histogram h;
    constexpr int kThreads = 8;  // spans multiple shards via round-robin
    constexpr int kPerThread = 40000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
            for (int k = 0; k < kPerThread; ++k) h.record(rng() % 100000);
        });
    for (auto& th : threads) th.join();
    const auto reading = h.read();
    EXPECT_EQ(reading.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t from_buckets = 0;
    for (const auto b : reading.buckets) from_buckets += b;
    EXPECT_EQ(from_buckets, reading.count);
}

TEST(Concurrency, SnapshotWhileWritingIsConsistent) {
    DSG_SKIP_IF_NOOP();
    // Readers snapshot while writers hammer the same histogram. Every
    // reading must satisfy count == sum(buckets) (the invariant quantile()
    // depends on) and counts must be monotone across successive readings.
    obs::Histogram h;
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    writers.reserve(4);
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&] {
            std::mt19937_64 rng(99);
            while (!stop.load(std::memory_order_relaxed))
                h.record(rng() % 1000);
        });
    std::uint64_t prev_count = 0;
    for (int k = 0; k < 200; ++k) {
        const auto reading = h.read();
        std::uint64_t from_buckets = 0;
        for (const auto b : reading.buckets) from_buckets += b;
        ASSERT_EQ(from_buckets, reading.count) << "iteration " << k;
        ASSERT_GE(reading.count, prev_count) << "iteration " << k;
        prev_count = reading.count;
    }
    stop.store(true);
    for (auto& w : writers) w.join();
}

TEST(Concurrency, RegistryLookupsFromManyThreads) {
    DSG_SKIP_IF_NOOP();
    // Instrument creation races resolve to ONE instrument per name.
    obs::Registry reg;
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int k = 0; k < 1000; ++k)
                reg.counter("shared", {{"kind", std::to_string(k % 5)}})
                    .add(1);
        });
    for (auto& th : threads) th.join();
    std::uint64_t total = 0;
    for (int k = 0; k < 5; ++k)
        total +=
            reg.counter("shared", {{"kind", std::to_string(k)}}).value();
    EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 1000);
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(Registry, LabelOrderIsIrrelevant) {
    obs::Registry reg;
    auto& a = reg.counter("c", {{"x", "1"}, {"y", "2"}});
    auto& b = reg.counter("c", {{"y", "2"}, {"x", "1"}});
    EXPECT_EQ(&a, &b);
    auto& c = reg.counter("c", {{"x", "2"}, {"y", "2"}});
    EXPECT_NE(&a, &c);
}

TEST(Registry, ReferencesAreStable) {
    obs::Registry reg;
    auto& first = reg.histogram("h");
    char name[16];
    for (int k = 0; k < 100; ++k) {
        std::snprintf(name, sizeof name, "h%d", k);
        (void)reg.histogram(name);
    }
    EXPECT_EQ(&first, &reg.histogram("h"));
}

TEST(Registry, CallbackGaugesEvaluateAtSnapshot) {
    obs::Registry reg;
    double source = 1.5;
    reg.set_callback("mirrored", {}, [&source] { return source; });
    source = 42.0;
    const auto snap = reg.snapshot();
    const auto it = std::find_if(snap.gauges.begin(), snap.gauges.end(),
                                 [](const auto& g) {
                                     return g.first == "mirrored";
                                 });
    ASSERT_NE(it, snap.gauges.end());
    EXPECT_EQ(it->second, 42.0);
    reg.remove_callback("mirrored");
    const auto snap2 = reg.snapshot();
    EXPECT_EQ(std::count_if(
                  snap2.gauges.begin(), snap2.gauges.end(),
                  [](const auto& g) { return g.first == "mirrored"; }),
              0);
}

TEST(Registry, DisabledRecordingIsDropped) {
    DSG_SKIP_IF_NOOP();
    obs::Registry reg;
    auto& counter = reg.counter("c");
    auto& hist = reg.histogram("h");
    counter.add(5);
    hist.record(100);
    obs::set_enabled(false);
    counter.add(5);
    hist.record(100);
    obs::set_enabled(true);
    EXPECT_EQ(counter.value(), 5u);
    EXPECT_EQ(hist.read().count, 1u);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

obs::MetricsSnapshot sample_snapshot() {
    obs::Registry reg;
    reg.counter("wal_bytes").add(1024);
    reg.gauge("queue_depth", {{"rank", "0"}}).set(7);
    auto& h = reg.histogram("query_ns", {{"class", "k-hop"}});
    for (int k = 1; k <= 100; ++k)
        h.record(static_cast<std::uint64_t>(k) * 1000);
    return reg.snapshot();
}

TEST(Rendering, JsonlIsOneParseableLine) {
    DSG_SKIP_IF_NOOP();
    const std::string line = sample_snapshot().to_jsonl();
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"ts_ms\""), std::string::npos);
    EXPECT_NE(line.find("\"wal_bytes\": 1024"), std::string::npos);
    EXPECT_NE(line.find("queue_depth{rank=0}"), std::string::npos);
    EXPECT_NE(line.find("\"p999\""), std::string::npos);
}

TEST(Rendering, PrometheusSplitsLabelsAndEmitsQuantiles) {
    DSG_SKIP_IF_NOOP();
    const std::string text = sample_snapshot().to_prometheus();
    EXPECT_NE(text.find("wal_bytes 1024"), std::string::npos);
    EXPECT_NE(text.find("queue_depth{rank=\"0\"} 7"), std::string::npos);
    EXPECT_NE(text.find("query_ns{class=\"k-hop\",quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("query_ns_count{class=\"k-hop\"} 100"),
              std::string::npos);
}

TEST(Rendering, PrometheusEmitsOneHelpAndTypePerContiguousFamily) {
    DSG_SKIP_IF_NOOP();
    // The exposition contract the introspection plane serves: every family
    // is announced by exactly one "# HELP" and one "# TYPE" line directly
    // above its (adjacent) samples, TYPE is a legal exposition type, and a
    // multi-instance family shares one header. Round-trip: parse the text
    // back and require the original values.
    obs::Registry reg;
    reg.counter("ops", {{"rank", "0"}}).add(5);
    reg.counter("ops", {{"rank", "1"}}).add(11);
    reg.gauge("stream_queue_depth").set(9);
    auto& h = reg.histogram("lat_ns");
    h.record(100);
    h.record(300);
    const std::string text = reg.snapshot().to_prometheus();

    std::map<std::string, std::string> type_of;   // family -> TYPE
    std::map<std::string, int> help_count, type_count;
    std::map<std::string, double> samples;        // key -> parsed value
    std::string current;  // family of the contiguous group we're inside
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        if (line.rfind("# HELP ", 0) == 0) {
            const std::string name =
                line.substr(7, line.find(' ', 7) - 7);
            ++help_count[name];
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::string name =
                line.substr(7, line.find(' ', 7) - 7);
            const std::string type = line.substr(line.rfind(' ') + 1);
            EXPECT_TRUE(type == "counter" || type == "gauge" ||
                        type == "summary")
                << line;
            EXPECT_EQ(help_count[name], 1) << "TYPE before HELP: " << name;
            ++type_count[name];
            type_of[name] = type;
            current = name;
            continue;
        }
        // A sample line: belongs to the family declared directly above
        // (summaries own their _sum/_count children).
        const auto cut = std::min(line.find('{'), line.find(' '));
        const std::string name = line.substr(0, cut);
        const bool owned =
            name == current ||
            (type_of[current] == "summary" &&
             (name == current + "_sum" || name == current + "_count"));
        EXPECT_TRUE(owned) << "sample " << name << " outside family "
                           << current;
        samples[line.substr(0, line.rfind(' '))] =
            std::stod(line.substr(line.rfind(' ') + 1));
    }
    for (const auto& [name, n] : help_count) EXPECT_EQ(n, 1) << name;
    for (const auto& [name, n] : type_count) EXPECT_EQ(n, 1) << name;
    EXPECT_EQ(type_of["ops"], "counter");
    EXPECT_EQ(type_of["stream_queue_depth"], "gauge");
    EXPECT_EQ(type_of["lat_ns"], "summary");
    EXPECT_EQ(type_of["lat_ns_max"], "gauge");

    // Round-trip of the recorded values.
    EXPECT_EQ(samples.at("ops{rank=\"0\"}"), 5.0);
    EXPECT_EQ(samples.at("ops{rank=\"1\"}"), 11.0);
    EXPECT_EQ(samples.at("stream_queue_depth"), 9.0);
    EXPECT_EQ(samples.at("lat_ns_count"), 2.0);
    EXPECT_EQ(samples.at("lat_ns_sum"), 400.0);  // mean * count, exact here
    EXPECT_GE(samples.at("lat_ns{quantile=\"0.99\"}"), 300.0);
}

TEST(Rendering, JsonObjectHasNoTimestamp) {
    const std::string obj = sample_snapshot().to_json_object();
    EXPECT_EQ(obj.front(), '{');
    EXPECT_EQ(obj.back(), '}');
    EXPECT_EQ(obj.find("ts_ms"), std::string::npos);
    EXPECT_NE(obj.find("\"histograms\""), std::string::npos);
}

TEST(Rendering, PrometheusEscapesLabelValues) {
    DSG_SKIP_IF_NOOP();
    // The exposition format requires backslash, double-quote and newline
    // escaped inside label values. Render, then unescape what landed
    // between the quotes and require the exact original back (round-trip).
    const std::string raw = "a\\b\"c\nd";
    obs::Registry reg;
    reg.counter("esc", {{"path", raw}}).add(1);
    const std::string text = reg.snapshot().to_prometheus();
    const std::string expect = "esc{path=\"a\\\\b\\\"c\\nd\"} 1";
    ASSERT_NE(text.find(expect), std::string::npos) << text;
    // No raw newline may survive inside the braces of any line.
    for (std::size_t pos = 0, nl = 0; (nl = text.find('\n', pos)) !=
                                      std::string::npos;
         pos = nl + 1) {
        const std::string line = text.substr(pos, nl - pos);
        const auto open = line.find('{');
        if (open != std::string::npos) {
            EXPECT_EQ(line.find('\n', open), std::string::npos);
        }
    }
    // Round-trip: unescape the rendered value.
    const auto start = text.find("esc{path=\"") + 10;
    const auto end = text.find("\"}", start);
    const std::string rendered = text.substr(start, end - start);
    std::string unescaped;
    for (std::size_t k = 0; k < rendered.size(); ++k) {
        if (rendered[k] == '\\' && k + 1 < rendered.size()) {
            const char c = rendered[++k];
            unescaped.push_back(c == 'n' ? '\n' : c);
        } else {
            unescaped.push_back(rendered[k]);
        }
    }
    EXPECT_EQ(unescaped, raw);
}

TEST(Rendering, TextTableMentionsEveryInstrument) {
    DSG_SKIP_IF_NOOP();
    const std::string text = sample_snapshot().to_text();
    EXPECT_NE(text.find("wal_bytes"), std::string::npos);
    EXPECT_NE(text.find("queue_depth{rank=0}"), std::string::npos);
    EXPECT_NE(text.find("query_ns{class=k-hop}"), std::string::npos);
}

}  // namespace
