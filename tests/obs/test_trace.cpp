// The profiler trace ring and its Chrome trace-event export: span capture
// with rank/epoch tags, ring-buffer wraparound accounting, and the JSON
// rendering scripts/check-trace.py validates in CI.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "par/profiler.hpp"

namespace par = dsg::par;
namespace obs = dsg::obs;

namespace {

/// Serializes trace-state tests (they share the global rings) and restores
/// the global switches afterwards.
class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        par::Profiler::clear_trace();
        par::Profiler::set_trace_enabled(true);
    }
    void TearDown() override {
        par::Profiler::set_trace_enabled(false);
        par::Profiler::set_trace_capacity(8192);
        par::Profiler::set_thread_rank(-1);
        par::Profiler::set_thread_epoch(-1);
        par::Profiler::clear_trace();
    }
};

TEST_F(TraceTest, ScopesEmitTaggedSpans) {
    par::Profiler::set_thread_rank(3);
    par::Profiler::set_thread_epoch(42);
    { par::Profiler::Scope scope(par::Phase::StreamApply); }
    { par::Profiler::Scope scope(par::Phase::ServeQuery); }
    const auto dump = par::Profiler::collect_trace();
    ASSERT_EQ(dump.spans.size(), 2u);
    EXPECT_EQ(dump.dropped, 0u);
    for (const auto& s : dump.spans) {
        EXPECT_EQ(s.rank, 3);
        EXPECT_EQ(s.epoch, 42);
    }
    // collect_trace sorts by start time.
    EXPECT_EQ(dump.spans[0].phase, par::Phase::StreamApply);
    EXPECT_EQ(dump.spans[1].phase, par::Phase::ServeQuery);
    EXPECT_LE(dump.spans[0].start_ns, dump.spans[1].start_ns);
}

TEST_F(TraceTest, DisabledEmitsNothing) {
    par::Profiler::set_trace_enabled(false);
    { par::Profiler::Scope scope(par::Phase::LocalMult); }
    const auto dump = par::Profiler::collect_trace();
    EXPECT_TRUE(dump.spans.empty());
}

TEST_F(TraceTest, UntaggedThreadDefaultsToMinusOne) {
    std::thread([] {
        par::Profiler::Scope scope(par::Phase::Other);
    }).join();
    const auto dump = par::Profiler::collect_trace();
    ASSERT_EQ(dump.spans.size(), 1u);
    EXPECT_EQ(dump.spans[0].rank, -1);
    EXPECT_EQ(dump.spans[0].epoch, -1);
}

TEST_F(TraceTest, RingWrapsKeepingNewestAndCountsDropped) {
    // A small ring on a fresh thread (capacity applies to rings created
    // after the call); overfill it 4x and expect the newest spans kept and
    // the overwritten ones counted, oldest-first order preserved.
    par::Profiler::set_trace_capacity(16);
    std::thread([] {
        par::Profiler::set_thread_rank(0);
        for (int k = 0; k < 64; ++k) {
            par::Profiler::set_thread_epoch(k);
            par::Profiler::Scope scope(par::Phase::StreamApply);
        }
    }).join();
    const auto dump = par::Profiler::collect_trace();
    ASSERT_EQ(dump.spans.size(), 16u);
    EXPECT_EQ(dump.dropped, 48u);
    // The survivors are the LAST 16 spans (epochs 48..63), sorted by start.
    for (std::size_t k = 0; k < dump.spans.size(); ++k) {
        EXPECT_EQ(dump.spans[k].epoch, 48 + static_cast<std::int64_t>(k));
        if (k > 0) {
            EXPECT_GE(dump.spans[k].start_ns, dump.spans[k - 1].start_ns);
        }
    }
}

TEST_F(TraceTest, ClearResetsSpansAndDropped) {
    par::Profiler::set_trace_capacity(4);
    std::thread([] {
        for (int k = 0; k < 10; ++k)
            par::Profiler::Scope scope(par::Phase::Other);
    }).join();
    EXPECT_GT(par::Profiler::collect_trace().dropped, 0u);
    par::Profiler::clear_trace();
    const auto dump = par::Profiler::collect_trace();
    EXPECT_TRUE(dump.spans.empty());
    EXPECT_EQ(dump.dropped, 0u);
}

TEST_F(TraceTest, RingsOfExitedThreadsSurvive) {
    std::thread([] {
        par::Profiler::set_thread_rank(1);
        par::Profiler::Scope scope(par::Phase::Bcast);
    }).join();
    std::thread([] {
        par::Profiler::set_thread_rank(2);
        par::Profiler::Scope scope(par::Phase::LocalMult);
    }).join();
    const auto dump = par::Profiler::collect_trace();
    ASSERT_EQ(dump.spans.size(), 2u);
    // Distinct threads get distinct process-local tids.
    EXPECT_NE(dump.spans[0].tid, dump.spans[1].tid);
}

// ---------------------------------------------------------------------------
// Chrome trace rendering
// ---------------------------------------------------------------------------

par::TraceDump sample_dump() {
    par::TraceDump dump;
    dump.spans.push_back({par::Phase::StreamApply, 2'000'000, 500'000, 7, 0, 1});
    dump.spans.push_back({par::Phase::Bcast, 1'000'000, 250'000, 7, 1, 2});
    dump.spans.push_back({par::Phase::Other, 3'000'000, 100, -1, -1, 3});
    dump.dropped = 5;
    return dump;
}

TEST(ChromeTrace, RendersCompleteEventsWithRelativeMicroseconds) {
    const std::string json = obs::to_chrome_trace(sample_dump());
    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_spans\": 5"), std::string::npos);
    // ph X complete events, named by phase.
    EXPECT_NE(json.find("\"name\": \"Stream apply\", \"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"Bcast\""), std::string::npos);
    // Timestamps are µs relative to the earliest span (1ms): the Bcast span
    // starts at 0, the StreamApply one at 1000 µs with dur 500 µs.
    EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 1000.000, \"dur\": 500.000"),
              std::string::npos);
    // pid = rank + 1 (non-rank threads group under pid 0); epoch in args.
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"epoch\": 7, \"rank\": 0}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"epoch\": -1, \"rank\": -1}"),
              std::string::npos);
}

TEST(ChromeTrace, EmptyDumpIsStillValid) {
    const std::string json = obs::to_chrome_trace(par::TraceDump{});
    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes) {
    const std::string json = obs::to_chrome_trace(sample_dump());
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrip) {
    { par::Profiler::Scope scope(par::Phase::ServePublish); }
    const std::string path =
        ::testing::TempDir() + "/dsg_test_trace_roundtrip.json";
    ASSERT_TRUE(obs::write_chrome_trace(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("Serve publish"), std::string::npos);
}

TEST(ChromeTrace, WriteToUnwritablePathReturnsFalse) {
    EXPECT_FALSE(obs::write_chrome_trace("/nonexistent-dir/trace.json"));
}

}  // namespace
