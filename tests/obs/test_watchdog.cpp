// The anomaly watchdog: rule firing and clearing with hysteresis driven by
// synthetic registry snapshots (the deterministic evaluate(snapshot) unit),
// metric family prefix matching, counter-rate rules, and the EventLog ring
// (bounded retention, monotone sequence numbers, cursor-based incremental
// collection, JSONL rendering).
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace obs = dsg::obs;

namespace {

/// A snapshot with one gauge; ts_ms advances so rate rules see time flow.
obs::MetricsSnapshot gauge_snap(std::int64_t ts_ms, const std::string& key,
                                double value) {
    obs::MetricsSnapshot snap;
    snap.ts_ms = ts_ms;
    snap.gauges.emplace_back(key, value);
    return snap;
}

obs::Rule gauge_rule(const std::string& name, const std::string& metric,
                     double threshold, int for_ticks, int clear_ticks) {
    obs::Rule r;
    r.name = name;
    r.metric = metric;
    r.kind = obs::RuleKind::GaugeAbove;
    r.threshold = threshold;
    r.for_ticks = for_ticks;
    r.clear_ticks = clear_ticks;
    return r;
}

TEST(Watchdog, FiresAfterForTicksAndClearsAfterClearTicks) {
    obs::Registry reg;
    obs::EventLog log;
    obs::Watchdog wd(reg, log, {gauge_rule("lag", "snapshot_lag", 8.0,
                                           /*for_ticks=*/2,
                                           /*clear_ticks=*/2)});

    // One breaching tick: hysteresis holds it back.
    EXPECT_EQ(wd.evaluate(gauge_snap(1000, "snapshot_lag", 20.0)), 0u);
    EXPECT_FALSE(wd.firing("lag"));
    // Second consecutive breach: fires exactly once.
    EXPECT_EQ(wd.evaluate(gauge_snap(2000, "snapshot_lag", 21.0)), 1u);
    EXPECT_TRUE(wd.firing("lag"));
    // Staying breached emits nothing new.
    EXPECT_EQ(wd.evaluate(gauge_snap(3000, "snapshot_lag", 22.0)), 0u);

    // One calm tick is not enough to clear...
    EXPECT_EQ(wd.evaluate(gauge_snap(4000, "snapshot_lag", 1.0)), 0u);
    EXPECT_TRUE(wd.firing("lag"));
    // ...two are; the clear event is Info severity.
    EXPECT_EQ(wd.evaluate(gauge_snap(5000, "snapshot_lag", 1.0)), 1u);
    EXPECT_FALSE(wd.firing("lag"));

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].rule, "lag");
    EXPECT_EQ(events[0].severity, obs::Severity::Warning);
    EXPECT_EQ(events[0].value, 21.0);
    EXPECT_EQ(events[0].threshold, 8.0);
    EXPECT_EQ(events[1].severity, obs::Severity::Info);
    EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(Watchdog, NoisySingleTicksNeverFlap) {
    obs::Registry reg;
    obs::EventLog log;
    obs::Watchdog wd(reg, log,
                     {gauge_rule("lag", "g", 10.0, /*for_ticks=*/2,
                                 /*clear_ticks=*/2)});
    // Alternating breach/calm: the breach streak resets every other tick,
    // so a 2-tick hysteresis never fires.
    for (int k = 0; k < 10; ++k)
        EXPECT_EQ(wd.evaluate(gauge_snap(1000 * (k + 1), "g",
                                         k % 2 == 0 ? 100.0 : 0.0)),
                  0u)
            << "tick " << k;
    EXPECT_FALSE(wd.firing("lag"));
    EXPECT_TRUE(log.snapshot().empty());
}

TEST(Watchdog, FamilyPrefixMatchesLabelledInstances) {
    obs::Registry reg;
    obs::EventLog log;
    obs::Watchdog wd(reg, log,
                     {gauge_rule("sat", "queue_depth", 100.0, 1, 1)});

    // The labelled instance "queue_depth{rank=2}" belongs to the family;
    // "queue_depth_other" does not (prefix must end at '{').
    obs::MetricsSnapshot snap;
    snap.ts_ms = 1000;
    snap.gauges.emplace_back("queue_depth{rank=0}", 5.0);
    snap.gauges.emplace_back("queue_depth{rank=2}", 500.0);
    snap.gauges.emplace_back("queue_depth_other", 9999.0);
    EXPECT_EQ(wd.evaluate(snap), 1u);  // max over the family: 500 > 100
    EXPECT_TRUE(wd.firing("sat"));

    obs::MetricsSnapshot snap2;
    snap2.ts_ms = 2000;
    snap2.gauges.emplace_back("queue_depth_other", 9999.0);
    // Only the non-family key remains: a missing family is a calm tick.
    EXPECT_EQ(wd.evaluate(snap2), 1u);  // the clear event
    EXPECT_FALSE(wd.firing("sat"));
}

TEST(Watchdog, CounterRateUsesTimestampDeltas) {
    obs::Registry reg;
    obs::EventLog log;
    obs::Rule r;
    r.name = "shed-burst";
    r.metric = "shed";
    r.kind = obs::RuleKind::CounterRateAbove;
    r.threshold = 100.0;  // per second
    obs::Watchdog wd(reg, log, {r});

    auto counter_snap = [](std::int64_t ts_ms, std::uint64_t value) {
        obs::MetricsSnapshot snap;
        snap.ts_ms = ts_ms;
        snap.counters.emplace_back("shed", value);
        return snap;
    };
    // First observation: no delta yet, never a breach.
    EXPECT_EQ(wd.evaluate(counter_snap(1000, 1000)), 0u);
    // +50 over 1 s = 50/s: calm.
    EXPECT_EQ(wd.evaluate(counter_snap(2000, 1050)), 0u);
    // +500 over 1 s = 500/s: fires.
    EXPECT_EQ(wd.evaluate(counter_snap(3000, 1550)), 1u);
    EXPECT_TRUE(wd.firing("shed-burst"));
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_NEAR(events[0].value, 500.0, 1.0);
}

TEST(Watchdog, HistogramRuleReadsTheConfiguredField) {
    obs::Registry reg;
    obs::EventLog log;
    obs::Rule r;
    r.name = "fsync-spike";
    r.metric = "wal_fsync_ns";
    r.kind = obs::RuleKind::HistAbove;
    r.threshold = 100e6;
    r.field = obs::HistField::P99;
    obs::Watchdog wd(reg, log, {r});

    obs::MetricsSnapshot snap;
    snap.ts_ms = 1000;
    obs::HistogramSummary h;
    h.count = 10;
    h.p50 = 1e6;
    h.p99 = 250e6;  // the spike is in the tail only
    h.max = 300e6;
    snap.histograms.emplace_back("wal_fsync_ns", h);
    EXPECT_EQ(wd.evaluate(snap), 1u);
    EXPECT_TRUE(wd.firing("fsync-spike"));
}

TEST(Watchdog, DefaultRulesCoverTheDocumentedFailureModes) {
    const auto rules = obs::default_rules(4096);
    std::vector<std::string> names;
    names.reserve(rules.size());
    for (const auto& r : rules) names.push_back(r.name);
    for (const char* expect :
         {"epoch-drain-stall", "queue-saturation", "shed-burst",
          "wal-fsync-spike", "snapshot-lag-ceiling",
          "rank-load-imbalance"})
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    // The queue rule scales with the configured capacity.
    for (const auto& r : rules) {
        if (r.name == "queue-saturation") {
            EXPECT_DOUBLE_EQ(r.threshold, 0.9 * 4096);
        }
    }
}

TEST(Watchdog, RankImbalanceRuleFiresOnFederatedSnapshotsOnly) {
    // The default rank-load-imbalance rule watches a family only federated
    // snapshots (obs/federate.hpp) carry. A plain registry never has it,
    // so the rule sits calm; sustained skew above 2x fires it.
    obs::Registry reg;
    obs::EventLog log;
    obs::Watchdog wd(reg, log, obs::default_rules(4096));

    // Non-federated snapshots: the family is absent -> calm forever.
    for (int tick = 0; tick < 5; ++tick)
        EXPECT_EQ(wd.evaluate(gauge_snap(1000 * (tick + 1),
                                         "stream_ops_applied", 1e9)),
                  0u);
    EXPECT_FALSE(wd.firing("rank-load-imbalance"));

    // Federated skew of 3x for the rule's 3 for_ticks: fires once.
    for (int tick = 0; tick < 2; ++tick)
        EXPECT_EQ(
            wd.evaluate(gauge_snap(
                10'000 + 1000 * tick,
                "stream_ops_applied_rank_imbalance{grid=2x3}", 3.0)),
            0u);
    EXPECT_EQ(wd.evaluate(gauge_snap(
                  12'000, "stream_ops_applied_rank_imbalance{grid=2x3}",
                  3.0)),
              1u);
    EXPECT_TRUE(wd.firing("rank-load-imbalance"));
    std::vector<obs::Event> events;
    log.collect_since(0, events);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().rule, "rank-load-imbalance");
    EXPECT_EQ(events.back().severity, obs::Severity::Warning);
}

TEST(Watchdog, EvaluateNowSnapshotsTheLiveRegistry) {
    if (obs::compiled_noop())
        GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)";
    obs::Registry reg;
    obs::EventLog log;
    obs::Watchdog wd(reg, log, {gauge_rule("lag", "serve_snapshot_lag",
                                           8.0, 1, 1)});
    reg.gauge("serve_snapshot_lag").set(3);
    EXPECT_EQ(wd.evaluate_now(), 0u);
    reg.gauge("serve_snapshot_lag").set(50);
    EXPECT_EQ(wd.evaluate_now(), 1u);
    EXPECT_TRUE(wd.firing("lag"));
}

// ---------------------------------------------------------------------------
// EventLog ring semantics
// ---------------------------------------------------------------------------

TEST(EventLog, AssignsMonotoneSeqAndFillsTimestamps) {
    obs::EventLog log;
    obs::Event e;
    e.rule = "r";
    EXPECT_EQ(log.append(e), 1u);
    EXPECT_EQ(log.append(e), 2u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_GT(events[0].ts_ms, 0);
    EXPECT_EQ(events[0].seq, 1u);
    EXPECT_EQ(events[1].seq, 2u);
}

TEST(EventLog, BoundedRetentionKeepsNewestAndCountsDropped) {
    obs::EventLog log(4);
    for (int k = 0; k < 10; ++k) {
        obs::Event e;
        e.rule = "r";
        e.rule += std::to_string(k);
        log.append(e);
    }
    EXPECT_EQ(log.total(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().rule, "r6");  // oldest retained
    EXPECT_EQ(events.back().rule, "r9");
}

TEST(EventLog, CursorCollectionNeverReEmits) {
    obs::EventLog log;
    obs::Event e;
    e.rule = "r";
    log.append(e);
    log.append(e);

    std::vector<obs::Event> out;
    std::uint64_t cursor = log.collect_since(0, out);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(cursor, 2u);

    out.clear();
    cursor = log.collect_since(cursor, out);  // nothing new
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(cursor, 2u);

    log.append(e);
    out.clear();
    cursor = log.collect_since(cursor, out);  // only the new one
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 3u);
}

TEST(EventLog, JsonlLineEscapesAndCarriesTheSchema) {
    obs::Event e;
    e.ts_ms = 1234;
    e.seq = 7;
    e.severity = obs::Severity::Critical;
    e.rule = "snapshot-lag-ceiling";
    e.metric = "serve_snapshot_lag";
    e.value = 12.0;
    e.threshold = 8.0;
    e.message = "lag \"high\"\nback\\slash";
    const std::string line = obs::to_jsonl(e);
    EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, no raw LF
    EXPECT_NE(line.find("\"ts_ms\": 1234"), std::string::npos);
    EXPECT_NE(line.find("\"seq\": 7"), std::string::npos);
    EXPECT_NE(line.find("\"severity\": \"critical\""), std::string::npos);
    EXPECT_NE(line.find("\"rule\": \"snapshot-lag-ceiling\""),
              std::string::npos);
    EXPECT_NE(line.find("\\\"high\\\""), std::string::npos);
    EXPECT_NE(line.find("\\u000a"), std::string::npos);
    EXPECT_NE(line.find("back\\\\slash"), std::string::npos);
}

}  // namespace
