#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "par/buffer.hpp"

namespace {

using dsg::par::Buffer;
using dsg::par::BufferReader;
using dsg::par::BufferWriter;

TEST(Buffer, RoundTripScalars) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::int64_t>(-42);
    w.write<double>(3.5);
    w.write<std::uint8_t>(7);

    BufferReader r(buf);
    EXPECT_EQ(r.read<std::int64_t>(), -42);
    EXPECT_EQ(r.read<double>(), 3.5);
    EXPECT_EQ(r.read<std::uint8_t>(), 7);
    EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, RoundTripVectors) {
    Buffer buf;
    BufferWriter w(buf);
    const std::vector<std::int64_t> a{1, 2, 3, -9};
    const std::vector<double> b{};
    w.write_vector(a);
    w.write_vector(b);

    BufferReader r(buf);
    EXPECT_EQ(r.read_vector<std::int64_t>(), a);
    EXPECT_TRUE(r.read_vector<double>().empty());
    EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, MixedScalarVectorOrderPreserved) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<int>(5);
    w.write_vector(std::vector<int>{10, 20});
    w.write<int>(6);

    BufferReader r(buf);
    EXPECT_EQ(r.read<int>(), 5);
    EXPECT_EQ(r.read_vector<int>(), (std::vector<int>{10, 20}));
    EXPECT_EQ(r.read<int>(), 6);
}

TEST(Buffer, TruncatedReadThrows) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint16_t>(1);
    BufferReader r(buf);
    EXPECT_THROW((void)r.read<std::uint64_t>(), std::out_of_range);
}

TEST(Buffer, TruncatedVectorThrows) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
    BufferReader r(buf);
    EXPECT_THROW((void)r.read_vector<double>(), std::out_of_range);
}

// Every malformed-input path must surface the typed error (which still
// derives from std::out_of_range for older call sites) instead of UB.
TEST(Buffer, MalformedInputThrowsTypedError) {
    using dsg::par::TruncatedBufferError;

    // Scalar read from an empty buffer.
    {
        Buffer empty;
        BufferReader r(empty);
        EXPECT_THROW((void)r.read<std::uint8_t>(), TruncatedBufferError);
    }
    // Vector read whose length header itself is cut short.
    {
        Buffer buf;
        BufferWriter w(buf);
        w.write<std::uint32_t>(7);  // 4 bytes: not even a full u64 header
        BufferReader r(buf);
        EXPECT_THROW((void)r.read_vector<int>(), TruncatedBufferError);
    }
    // Vector payload shorter than the (honest) length header claims.
    {
        Buffer buf;
        BufferWriter w(buf);
        w.write_vector(std::vector<double>{1.0, 2.0, 3.0});
        buf.resize(buf.size() - 1);  // tear one byte off the payload
        BufferReader r(buf);
        EXPECT_THROW((void)r.read_vector<double>(), TruncatedBufferError);
    }
    // skip() past the end is bounds-checked like a read.
    {
        Buffer buf(4);
        BufferReader r(buf);
        EXPECT_THROW(r.skip(5), TruncatedBufferError);
    }
}

// Regression for the PR 1 length-overflow bug: a corrupt header near 2^64
// makes n * sizeof(T) wrap to a small number; the check must reject it
// instead of memcpy-ing out of bounds (or allocating n elements).
TEST(Buffer, LengthOverflowHeaderRejected) {
    using dsg::par::TruncatedBufferError;
    for (const std::uint64_t n :
         {~std::uint64_t{0}, ~std::uint64_t{0} / 2 + 1,
          (std::uint64_t{1} << 61) + 1}) {
        Buffer buf;
        BufferWriter w(buf);
        w.write<std::uint64_t>(n);
        w.write<double>(0.5);  // a little real payload after the bogus header
        BufferReader r(buf);
        EXPECT_THROW((void)r.read_vector<double>(), TruncatedBufferError)
            << "header " << n;
    }
}

TEST(Buffer, ReaderStateIntactAfterFailedRead) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint32_t>(42);
    BufferReader r(buf);
    EXPECT_THROW((void)r.read<std::uint64_t>(), std::out_of_range);
    // The failed read consumed nothing; the valid prefix is still readable.
    EXPECT_EQ(r.position(), 0u);
    EXPECT_EQ(r.read<std::uint32_t>(), 42u);
    EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, RemainingTracksPosition) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint32_t>(9);
    w.write<std::uint32_t>(10);
    BufferReader r(buf);
    EXPECT_EQ(r.remaining(), 8u);
    (void)r.read<std::uint32_t>();
    EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
