#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "par/buffer.hpp"

namespace {

using dsg::par::Buffer;
using dsg::par::BufferReader;
using dsg::par::BufferWriter;

TEST(Buffer, RoundTripScalars) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::int64_t>(-42);
    w.write<double>(3.5);
    w.write<std::uint8_t>(7);

    BufferReader r(buf);
    EXPECT_EQ(r.read<std::int64_t>(), -42);
    EXPECT_EQ(r.read<double>(), 3.5);
    EXPECT_EQ(r.read<std::uint8_t>(), 7);
    EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, RoundTripVectors) {
    Buffer buf;
    BufferWriter w(buf);
    const std::vector<std::int64_t> a{1, 2, 3, -9};
    const std::vector<double> b{};
    w.write_vector(a);
    w.write_vector(b);

    BufferReader r(buf);
    EXPECT_EQ(r.read_vector<std::int64_t>(), a);
    EXPECT_TRUE(r.read_vector<double>().empty());
    EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, MixedScalarVectorOrderPreserved) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<int>(5);
    w.write_vector(std::vector<int>{10, 20});
    w.write<int>(6);

    BufferReader r(buf);
    EXPECT_EQ(r.read<int>(), 5);
    EXPECT_EQ(r.read_vector<int>(), (std::vector<int>{10, 20}));
    EXPECT_EQ(r.read<int>(), 6);
}

TEST(Buffer, TruncatedReadThrows) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint16_t>(1);
    BufferReader r(buf);
    EXPECT_THROW((void)r.read<std::uint64_t>(), std::out_of_range);
}

TEST(Buffer, TruncatedVectorThrows) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
    BufferReader r(buf);
    EXPECT_THROW((void)r.read_vector<double>(), std::out_of_range);
}

TEST(Buffer, RemainingTracksPosition) {
    Buffer buf;
    BufferWriter w(buf);
    w.write<std::uint32_t>(9);
    w.write<std::uint32_t>(10);
    BufferReader r(buf);
    EXPECT_EQ(r.remaining(), 8u);
    (void)r.read<std::uint32_t>();
    EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
