// Tests of the message-passing runtime: point-to-point, collectives, splits,
// abort propagation, and volume accounting — across several world sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "par/comm.hpp"

namespace {

using dsg::par::Buffer;
using dsg::par::Comm;
using dsg::par::run_world;

Buffer make_buffer(const std::string& s) {
    Buffer b(s.size());
    std::memcpy(b.data(), s.data(), s.size());
    return b;
}

std::string to_string(const Buffer& b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

class CommP : public ::testing::TestWithParam<int> {};

TEST_P(CommP, RankAndSize) {
    const int p = GetParam();
    std::atomic<int> seen{0};
    run_world(p, [&](Comm& c) {
        EXPECT_EQ(c.size(), p);
        EXPECT_GE(c.rank(), 0);
        EXPECT_LT(c.rank(), p);
        seen.fetch_add(1);
    });
    EXPECT_EQ(seen.load(), p);
}

TEST_P(CommP, RingSendRecv) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        const int next = (c.rank() + 1) % c.size();
        const int prev = (c.rank() + c.size() - 1) % c.size();
        c.send(next, 3, make_buffer("from " + std::to_string(c.rank())));
        const Buffer got = c.recv(prev, 3);
        EXPECT_EQ(to_string(got), "from " + std::to_string(prev));
    });
}

TEST_P(CommP, TagsKeepStreamsSeparate) {
    const int p = GetParam();
    if (p < 2) GTEST_SKIP();
    run_world(p, [&](Comm& c) {
        if (c.rank() == 0) {
            c.send(1, 7, make_buffer("seven"));
            c.send(1, 8, make_buffer("eight"));
        } else if (c.rank() == 1) {
            // Receive in the opposite order of sending.
            EXPECT_EQ(to_string(c.recv(0, 8)), "eight");
            EXPECT_EQ(to_string(c.recv(0, 7)), "seven");
        }
    });
}

TEST_P(CommP, MessagesFromSameSourceStayOrdered) {
    const int p = GetParam();
    if (p < 2) GTEST_SKIP();
    run_world(p, [&](Comm& c) {
        if (c.rank() == 0) {
            for (int m = 0; m < 20; ++m)
                c.send(1, 1, make_buffer(std::to_string(m)));
        } else if (c.rank() == 1) {
            for (int m = 0; m < 20; ++m)
                EXPECT_EQ(to_string(c.recv(0, 1)), std::to_string(m));
        }
    });
}

TEST_P(CommP, SendRecvExchangesWithPeer) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        const int peer = c.size() - 1 - c.rank();  // pairwise (self at center)
        const Buffer got =
            c.sendrecv(peer, 5, make_buffer("r" + std::to_string(c.rank())));
        EXPECT_EQ(to_string(got), "r" + std::to_string(peer));
    });
}

TEST_P(CommP, BcastDeliversRootBuffer) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        for (int root = 0; root < c.size(); ++root) {
            Buffer msg;
            if (c.rank() == root) msg = make_buffer("hello " + std::to_string(root));
            const Buffer got = c.bcast(root, std::move(msg));
            EXPECT_EQ(to_string(got), "hello " + std::to_string(root));
        }
    });
}

TEST_P(CommP, AlltoallvRoutesEveryPair) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        std::vector<Buffer> send(static_cast<std::size_t>(c.size()));
        for (int d = 0; d < c.size(); ++d)
            send[static_cast<std::size_t>(d)] = make_buffer(
                std::to_string(c.rank()) + "->" + std::to_string(d));
        auto recv = c.alltoallv(std::move(send));
        ASSERT_EQ(recv.size(), static_cast<std::size_t>(c.size()));
        for (int s = 0; s < c.size(); ++s)
            EXPECT_EQ(to_string(recv[static_cast<std::size_t>(s)]),
                      std::to_string(s) + "->" + std::to_string(c.rank()));
    });
}

TEST_P(CommP, GatherCollectsAtRoot) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        const int root = c.size() - 1;
        auto got = c.gather(root, make_buffer(std::to_string(c.rank() * 11)));
        if (c.rank() == root) {
            ASSERT_EQ(got.size(), static_cast<std::size_t>(c.size()));
            for (int s = 0; s < c.size(); ++s)
                EXPECT_EQ(to_string(got[static_cast<std::size_t>(s)]),
                          std::to_string(s * 11));
        } else {
            EXPECT_TRUE(got.empty());
        }
    });
}

TEST_P(CommP, AllgatherGivesEveryoneEverything) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        std::string mine = "x";
        mine += std::to_string(c.rank());
        auto got = c.allgather(make_buffer(mine));
        ASSERT_EQ(got.size(), static_cast<std::size_t>(c.size()));
        for (int s = 0; s < c.size(); ++s) {
            std::string expect = "x";
            expect += std::to_string(s);
            EXPECT_EQ(to_string(got[static_cast<std::size_t>(s)]), expect);
        }
    });
}

TEST_P(CommP, ReduceMergeConcatenatesAllContributions) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        for (int root = 0; root < c.size(); ++root) {
            // Merge = sum of comma counts; encode each rank as one byte.
            Buffer mine(1, static_cast<std::byte>(c.rank()));
            Buffer out = c.reduce_merge(
                root, std::move(mine), [](Buffer a, Buffer b) {
                    a.insert(a.end(), b.begin(), b.end());
                    return a;
                });
            if (c.rank() == root) {
                ASSERT_EQ(out.size(), static_cast<std::size_t>(c.size()));
                long long sum = 0;
                for (auto byte : out) sum += static_cast<int>(byte);
                EXPECT_EQ(sum, static_cast<long long>(c.size()) *
                                   (c.size() - 1) / 2);
            } else {
                EXPECT_TRUE(out.empty());
            }
        }
    });
}

TEST_P(CommP, AllreduceSumAndMax) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        const long long sum = c.allreduce<long long>(
            c.rank() + 1, [](long long a, long long b) { return a + b; });
        EXPECT_EQ(sum, static_cast<long long>(c.size()) * (c.size() + 1) / 2);
        const int mx = c.allreduce<int>(
            c.rank(), [](int a, int b) { return std::max(a, b); });
        EXPECT_EQ(mx, c.size() - 1);
    });
}

TEST_P(CommP, AllreduceOrCombinesBitVectors) {
    const int p = GetParam();
    run_world(p, [&](Comm& c) {
        std::vector<std::uint64_t> words(8, 0);
        words[static_cast<std::size_t>(c.rank()) % 8] |=
            std::uint64_t{1} << c.rank();
        c.allreduce_or(words);
        std::uint64_t all = 0;
        for (auto w : words) all |= w;
        std::uint64_t expect = 0;
        for (int r = 0; r < c.size(); ++r) expect |= std::uint64_t{1} << r;
        EXPECT_EQ(all, expect);
    });
}

TEST_P(CommP, SplitFormsRowGroups) {
    const int p = GetParam();
    const int q = p == 1 ? 1 : (p == 4 ? 2 : 3);
    if (q * q != p) GTEST_SKIP();
    run_world(p, [&](Comm& c) {
        const int row = c.rank() / q;
        const int col = c.rank() % q;
        Comm rc = c.split(row, col);
        EXPECT_EQ(rc.size(), q);
        EXPECT_EQ(rc.rank(), col);
        // Collectives work within the subgroup.
        const int rowsum =
            rc.allreduce<int>(c.rank(), [](int a, int b) { return a + b; });
        int expect = 0;
        for (int j = 0; j < q; ++j) expect += row * q + j;
        EXPECT_EQ(rowsum, expect);
    });
}

TEST_P(CommP, SplitSubgroupsOperateConcurrently) {
    const int p = GetParam();
    if (p < 4) GTEST_SKIP();
    run_world(p, [&](Comm& c) {
        // Two halves run independent broadcast sequences.
        const int color = c.rank() % 2;
        Comm half = c.split(color, c.rank());
        for (int iter = 0; iter < 5; ++iter) {
            Buffer msg;
            if (half.rank() == 0)
                msg = make_buffer("c" + std::to_string(color) + "i" +
                                  std::to_string(iter));
            const Buffer got = half.bcast(0, std::move(msg));
            EXPECT_EQ(to_string(got), "c" + std::to_string(color) + "i" +
                                          std::to_string(iter));
        }
    });
}

TEST_P(CommP, StatsCountTraffic) {
    const int p = GetParam();
    if (p < 2) GTEST_SKIP();
    run_world(p, [&](Comm& c) {
        c.stats().reset();
        c.barrier();
        Buffer msg;
        if (c.rank() == 0) msg = Buffer(100);
        (void)c.bcast(0, std::move(msg));
        c.barrier();
        if (c.rank() == 0) {
            const auto s = c.stats().snapshot();
            // Every non-root copied 100 bytes.
            EXPECT_EQ(s.bcast_bytes, static_cast<std::uint64_t>(p - 1) * 100);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Worlds, CommP, ::testing::Values(1, 2, 4, 9, 16));

TEST(Comm, ExceptionOnOneRankPropagates) {
    EXPECT_THROW(
        run_world(4,
                  [&](Comm& c) {
                      if (c.rank() == 2) throw std::runtime_error("rank 2 died");
                      // Other ranks block; the abort must wake them.
                      c.barrier();
                  }),
        std::runtime_error);
}

TEST(Comm, ExceptionWhileOthersBlockInRecv) {
    EXPECT_THROW(run_world(3,
                           [&](Comm& c) {
                               if (c.rank() == 0)
                                   throw std::logic_error("fail fast");
                               (void)c.recv(0, 1);  // never satisfied
                           }),
                 std::logic_error);
}

TEST(Comm, InvalidWorldSizeRejected) {
    EXPECT_THROW(run_world(0, [](Comm&) {}), std::invalid_argument);
}

TEST(Comm, SelfSendIsFreeInStats) {
    run_world(1, [](Comm& c) {
        c.stats().reset();
        c.send(0, 1, Buffer(64));
        (void)c.recv(0, 1);
        const auto s = c.stats().snapshot();
        EXPECT_EQ(s.p2p_bytes, 0u);
        EXPECT_EQ(s.p2p_messages, 0u);
    });
}

}  // namespace
