// Stress tests of the message-passing runtime: high-volume randomized
// traffic, interleaved collectives on split communicators, large payloads,
// and repeated world construction — the failure modes a deadlock or a
// tag-matching bug would surface under.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "par/comm.hpp"

namespace {

using dsg::par::Buffer;
using dsg::par::Comm;
using dsg::par::run_world;

Buffer payload(std::uint64_t value, std::size_t size) {
    Buffer b(size);
    for (std::size_t i = 0; i < size; ++i)
        b[i] = static_cast<std::byte>((value + i) & 0xff);
    return b;
}

bool check_payload(const Buffer& b, std::uint64_t value) {
    for (std::size_t i = 0; i < b.size(); ++i)
        if (b[i] != static_cast<std::byte>((value + i) & 0xff)) return false;
    return true;
}

TEST(CommStress, ManySmallMessagesAllPairs) {
    run_world(8, [&](Comm& c) {
        constexpr int kRounds = 25;
        for (int r = 0; r < kRounds; ++r) {
            for (int d = 0; d < c.size(); ++d)
                c.send(d, r % 7, payload(static_cast<std::uint64_t>(
                                             c.rank() * 1000 + r),
                                         32));
            for (int s = 0; s < c.size(); ++s) {
                const Buffer got = c.recv(s, r % 7);
                EXPECT_TRUE(check_payload(
                    got, static_cast<std::uint64_t>(s * 1000 + r)));
            }
        }
    });
}

TEST(CommStress, LargePayloadBroadcastAndReduce) {
    run_world(4, [&](Comm& c) {
        const std::size_t mb = 4 << 20;  // 4 MiB
        Buffer msg;
        if (c.rank() == 2) msg = payload(99, mb);
        const Buffer got = c.bcast(2, std::move(msg));
        ASSERT_EQ(got.size(), mb);
        EXPECT_TRUE(check_payload(got, 99));

        // Tree reduction of 1 MiB buffers (concatenating lengths).
        Buffer mine = payload(static_cast<std::uint64_t>(c.rank()), 1 << 20);
        Buffer out = c.reduce_merge(0, std::move(mine), [](Buffer a, Buffer b) {
            a.insert(a.end(), b.begin(), b.end());
            return a;
        });
        if (c.rank() == 0) {
            EXPECT_EQ(out.size(), std::size_t{4} << 20);
        }
    });
}

TEST(CommStress, InterleavedCollectivesOnRowAndColumnComms) {
    // The access pattern of the SpGEMM rounds: alternating broadcasts and
    // reductions on both sub-communicators of a 3x3 grid, many times.
    run_world(9, [&](Comm& c) {
        const int row = c.rank() / 3;
        const int col = c.rank() % 3;
        Comm rc = c.split(row, col);
        Comm cc = c.split(col, row);
        std::mt19937_64 rng(77);
        for (int round = 0; round < 30; ++round) {
            const int root = static_cast<int>(rng() % 3);
            Buffer rmsg;
            if (rc.rank() == root)
                rmsg = payload(static_cast<std::uint64_t>(row * 100 + round), 64);
            const Buffer rgot = rc.bcast(root, std::move(rmsg));
            EXPECT_TRUE(check_payload(
                rgot, static_cast<std::uint64_t>(row * 100 + round)));

            Buffer cmsg;
            if (cc.rank() == root)
                cmsg = payload(static_cast<std::uint64_t>(col * 100 + round), 64);
            const Buffer cgot = cc.bcast(root, std::move(cmsg));
            EXPECT_TRUE(check_payload(
                cgot, static_cast<std::uint64_t>(col * 100 + round)));

            Buffer acc(8, std::byte{1});
            Buffer red = cc.reduce_merge(root, std::move(acc),
                                         [](Buffer a, Buffer b) {
                                             a.insert(a.end(), b.begin(),
                                                      b.end());
                                             return a;
                                         });
            if (cc.rank() == root) {
                EXPECT_EQ(red.size(), 24u);
            }
        }
    });
}

TEST(CommStress, RandomizedAlltoallvVolumes) {
    run_world(6, [&](Comm& c) {
        std::mt19937_64 rng(10 + static_cast<std::uint64_t>(c.rank()));
        for (int round = 0; round < 10; ++round) {
            std::vector<Buffer> send(6);
            for (int d = 0; d < 6; ++d) {
                // Deterministic size both sides can compute: depends only on
                // (source, dest, round).
                const std::size_t size =
                    ((static_cast<std::size_t>(c.rank()) * 31 +
                      static_cast<std::size_t>(d) * 17 +
                      static_cast<std::size_t>(round)) %
                     257) +
                    1;
                send[static_cast<std::size_t>(d)] = payload(
                    static_cast<std::uint64_t>(c.rank() * 7 + d), size);
            }
            auto recv = c.alltoallv(std::move(send));
            for (int s = 0; s < 6; ++s) {
                const std::size_t expect_size =
                    ((static_cast<std::size_t>(s) * 31 +
                      static_cast<std::size_t>(c.rank()) * 17 +
                      static_cast<std::size_t>(round)) %
                     257) +
                    1;
                ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), expect_size);
                EXPECT_TRUE(check_payload(
                    recv[static_cast<std::size_t>(s)],
                    static_cast<std::uint64_t>(s * 7 + c.rank())));
            }
        }
    });
}

TEST(CommStress, RepeatedWorldsDoNotLeakState) {
    for (int iter = 0; iter < 20; ++iter) {
        run_world(4, [&](Comm& c) {
            const int sum = c.allreduce<int>(c.rank(), [](int a, int b) {
                return a + b;
            });
            EXPECT_EQ(sum, 6);
        });
    }
}

TEST(CommStress, ReduceMergeEveryRootEveryWorldSize) {
    for (int p : {2, 3, 5, 8}) {
        run_world(p, [&](Comm& c) {
            for (int root = 0; root < p; ++root) {
                Buffer mine(1, static_cast<std::byte>(c.rank()));
                Buffer out = c.reduce_merge(root, std::move(mine),
                                            [](Buffer a, Buffer b) {
                                                a.insert(a.end(), b.begin(),
                                                         b.end());
                                                return a;
                                            });
                if (c.rank() == root) {
                    long long sum = 0;
                    for (auto byte : out) sum += static_cast<int>(byte);
                    EXPECT_EQ(sum, static_cast<long long>(p) * (p - 1) / 2);
                }
            }
        });
    }
}

}  // namespace
