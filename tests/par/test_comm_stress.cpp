// Stress tests of the message-passing runtime: high-volume randomized
// traffic, interleaved collectives on split communicators, large payloads,
// and repeated world construction — the failure modes a deadlock or a
// tag-matching bug would surface under.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <thread>

#include "par/comm.hpp"

namespace {

using dsg::par::Buffer;
using dsg::par::Comm;
using dsg::par::run_world;

Buffer payload(std::uint64_t value, std::size_t size) {
    Buffer b(size);
    for (std::size_t i = 0; i < size; ++i)
        b[i] = static_cast<std::byte>((value + i) & 0xff);
    return b;
}

bool check_payload(const Buffer& b, std::uint64_t value) {
    for (std::size_t i = 0; i < b.size(); ++i)
        if (b[i] != static_cast<std::byte>((value + i) & 0xff)) return false;
    return true;
}

TEST(CommStress, ManySmallMessagesAllPairs) {
    run_world(8, [&](Comm& c) {
        constexpr int kRounds = 25;
        for (int r = 0; r < kRounds; ++r) {
            for (int d = 0; d < c.size(); ++d)
                c.send(d, r % 7, payload(static_cast<std::uint64_t>(
                                             c.rank() * 1000 + r),
                                         32));
            for (int s = 0; s < c.size(); ++s) {
                const Buffer got = c.recv(s, r % 7);
                EXPECT_TRUE(check_payload(
                    got, static_cast<std::uint64_t>(s * 1000 + r)));
            }
        }
    });
}

TEST(CommStress, LargePayloadBroadcastAndReduce) {
    run_world(4, [&](Comm& c) {
        const std::size_t mb = 4 << 20;  // 4 MiB
        Buffer msg;
        if (c.rank() == 2) msg = payload(99, mb);
        const Buffer got = c.bcast(2, std::move(msg));
        ASSERT_EQ(got.size(), mb);
        EXPECT_TRUE(check_payload(got, 99));

        // Tree reduction of 1 MiB buffers (concatenating lengths).
        Buffer mine = payload(static_cast<std::uint64_t>(c.rank()), 1 << 20);
        Buffer out = c.reduce_merge(0, std::move(mine), [](Buffer a, Buffer b) {
            a.insert(a.end(), b.begin(), b.end());
            return a;
        });
        if (c.rank() == 0) {
            EXPECT_EQ(out.size(), std::size_t{4} << 20);
        }
    });
}

TEST(CommStress, InterleavedCollectivesOnRowAndColumnComms) {
    // The access pattern of the SpGEMM rounds: alternating broadcasts and
    // reductions on both sub-communicators of a 3x3 grid, many times.
    run_world(9, [&](Comm& c) {
        const int row = c.rank() / 3;
        const int col = c.rank() % 3;
        Comm rc = c.split(row, col);
        Comm cc = c.split(col, row);
        std::mt19937_64 rng(77);
        for (int round = 0; round < 30; ++round) {
            const int root = static_cast<int>(rng() % 3);
            Buffer rmsg;
            if (rc.rank() == root)
                rmsg = payload(static_cast<std::uint64_t>(row * 100 + round), 64);
            const Buffer rgot = rc.bcast(root, std::move(rmsg));
            EXPECT_TRUE(check_payload(
                rgot, static_cast<std::uint64_t>(row * 100 + round)));

            Buffer cmsg;
            if (cc.rank() == root)
                cmsg = payload(static_cast<std::uint64_t>(col * 100 + round), 64);
            const Buffer cgot = cc.bcast(root, std::move(cmsg));
            EXPECT_TRUE(check_payload(
                cgot, static_cast<std::uint64_t>(col * 100 + round)));

            Buffer acc(8, std::byte{1});
            Buffer red = cc.reduce_merge(root, std::move(acc),
                                         [](Buffer a, Buffer b) {
                                             a.insert(a.end(), b.begin(),
                                                      b.end());
                                             return a;
                                         });
            if (cc.rank() == root) {
                EXPECT_EQ(red.size(), 24u);
            }
        }
    });
}

TEST(CommStress, RandomizedAlltoallvVolumes) {
    run_world(6, [&](Comm& c) {
        std::mt19937_64 rng(10 + static_cast<std::uint64_t>(c.rank()));
        for (int round = 0; round < 10; ++round) {
            std::vector<Buffer> send(6);
            for (int d = 0; d < 6; ++d) {
                // Deterministic size both sides can compute: depends only on
                // (source, dest, round).
                const std::size_t size =
                    ((static_cast<std::size_t>(c.rank()) * 31 +
                      static_cast<std::size_t>(d) * 17 +
                      static_cast<std::size_t>(round)) %
                     257) +
                    1;
                send[static_cast<std::size_t>(d)] = payload(
                    static_cast<std::uint64_t>(c.rank() * 7 + d), size);
            }
            auto recv = c.alltoallv(std::move(send));
            for (int s = 0; s < 6; ++s) {
                const std::size_t expect_size =
                    ((static_cast<std::size_t>(s) * 31 +
                      static_cast<std::size_t>(c.rank()) * 17 +
                      static_cast<std::size_t>(round)) %
                     257) +
                    1;
                ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), expect_size);
                EXPECT_TRUE(check_payload(
                    recv[static_cast<std::size_t>(s)],
                    static_cast<std::uint64_t>(s * 7 + c.rank())));
            }
        }
    });
}

// Async stress: every rank posts a window of overlapping ibcasts (posting
// order is the collective contract and must match across ranks), then a pool
// of worker threads completes the handles in a per-rank randomized order.
// Completion order must not matter: each handle is tag-isolated. This test
// runs under the CI TSan job (par label) to catch races in the mailbox
// delivery that sync-mode traffic cannot reach.
TEST(CommStress, OverlappingAsyncBroadcastsCompleteInAnyOrder) {
    run_world(6, [&](Comm& c) {
        constexpr int kInFlight = 12;
        constexpr int kWorkers = 3;
        std::mt19937_64 rng(33 + static_cast<std::uint64_t>(c.rank()));
        for (int round = 0; round < 8; ++round) {
            std::vector<Comm::PendingBcast> pending;
            pending.reserve(kInFlight);
            for (int k = 0; k < kInFlight; ++k) {
                const int root = (round + k) % c.size();
                Buffer msg;
                if (c.rank() == root)
                    msg = payload(static_cast<std::uint64_t>(root * 1000 +
                                                             round * 100 + k),
                                  48);
                pending.push_back(c.ibcast(root, std::move(msg)));
            }
            std::vector<int> order(kInFlight);
            std::iota(order.begin(), order.end(), 0);
            std::shuffle(order.begin(), order.end(), rng);
            std::vector<Buffer> got(kInFlight);
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> workers;
            for (int w = 0; w < kWorkers; ++w)
                workers.emplace_back([&] {
                    for (std::size_t i = next.fetch_add(1);
                         i < static_cast<std::size_t>(kInFlight);
                         i = next.fetch_add(1)) {
                        const auto k = static_cast<std::size_t>(
                            order[static_cast<std::size_t>(i)]);
                        got[k] = pending[k].wait();
                    }
                });
            for (auto& w : workers) w.join();
            for (int k = 0; k < kInFlight; ++k) {
                const int root = (round + k) % c.size();
                EXPECT_TRUE(check_payload(
                    got[static_cast<std::size_t>(k)],
                    static_cast<std::uint64_t>(root * 1000 + round * 100 + k)))
                    << "round " << round << " handle " << k;
            }
        }
    });
}

// Same shape for ialltoallv, plus interleaved ibcasts in the same posting
// window: two collective kinds in flight at once, completed in randomized
// order by concurrent threads.
TEST(CommStress, OverlappingAsyncAlltoallvsAndBroadcastsMix) {
    run_world(6, [&](Comm& c) {
        constexpr int kPairs = 6;  // per round: one alltoallv + one bcast each
        const auto p = static_cast<std::size_t>(c.size());
        std::mt19937_64 rng(91 + static_cast<std::uint64_t>(c.rank()));
        for (int round = 0; round < 6; ++round) {
            std::vector<Comm::PendingAlltoallv> pa;
            std::vector<Comm::PendingBcast> pb;
            for (int k = 0; k < kPairs; ++k) {
                std::vector<Buffer> send(p);
                for (int d = 0; d < c.size(); ++d) {
                    const std::size_t size =
                        ((static_cast<std::size_t>(c.rank()) * 29 +
                          static_cast<std::size_t>(d) * 13 +
                          static_cast<std::size_t>(round + k)) %
                         101) +
                        1;
                    send[static_cast<std::size_t>(d)] = payload(
                        static_cast<std::uint64_t>(c.rank() * 11 + d + k),
                        size);
                }
                pa.push_back(c.ialltoallv(std::move(send)));
                const int root = k % c.size();
                Buffer msg;
                if (c.rank() == root)
                    msg = payload(static_cast<std::uint64_t>(500 + k), 32);
                pb.push_back(c.ibcast(root, std::move(msg)));
            }
            // Complete: one thread drains the alltoallvs in reverse order,
            // another the bcasts shuffled — both concurrently.
            std::vector<std::vector<Buffer>> agot(kPairs);
            std::vector<Buffer> bgot(kPairs);
            std::thread ta([&] {
                for (int k = kPairs - 1; k >= 0; --k)
                    agot[static_cast<std::size_t>(k)] =
                        pa[static_cast<std::size_t>(k)].wait();
            });
            std::thread tb([&] {
                std::vector<int> order(kPairs);
                std::iota(order.begin(), order.end(), 0);
                std::shuffle(order.begin(), order.end(), rng);
                for (const int k : order)
                    bgot[static_cast<std::size_t>(k)] =
                        pb[static_cast<std::size_t>(k)].wait();
            });
            ta.join();
            tb.join();
            for (int k = 0; k < kPairs; ++k) {
                EXPECT_TRUE(check_payload(bgot[static_cast<std::size_t>(k)],
                                          static_cast<std::uint64_t>(500 + k)));
                for (int s = 0; s < c.size(); ++s) {
                    const std::size_t expect_size =
                        ((static_cast<std::size_t>(s) * 29 +
                          static_cast<std::size_t>(c.rank()) * 13 +
                          static_cast<std::size_t>(round + k)) %
                         101) +
                        1;
                    const auto& buf =
                        agot[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(s)];
                    ASSERT_EQ(buf.size(), expect_size);
                    EXPECT_TRUE(check_payload(
                        buf, static_cast<std::uint64_t>(s * 11 + c.rank() +
                                                        k)));
                }
            }
        }
    });
}

TEST(CommStress, RepeatedWorldsDoNotLeakState) {
    for (int iter = 0; iter < 20; ++iter) {
        run_world(4, [&](Comm& c) {
            const int sum = c.allreduce<int>(c.rank(), [](int a, int b) {
                return a + b;
            });
            EXPECT_EQ(sum, 6);
        });
    }
}

TEST(CommStress, ReduceMergeEveryRootEveryWorldSize) {
    for (int p : {2, 3, 5, 8}) {
        run_world(p, [&](Comm& c) {
            for (int root = 0; root < p; ++root) {
                Buffer mine(1, static_cast<std::byte>(c.rank()));
                Buffer out = c.reduce_merge(root, std::move(mine),
                                            [](Buffer a, Buffer b) {
                                                a.insert(a.end(), b.begin(),
                                                         b.end());
                                                return a;
                                            });
                if (c.rank() == root) {
                    long long sum = 0;
                    for (auto byte : out) sum += static_cast<int>(byte);
                    EXPECT_EQ(sum, static_cast<long long>(p) * (p - 1) / 2);
                }
            }
        });
    }
}

}  // namespace
