#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "par/profiler.hpp"

namespace {

using dsg::par::Phase;
using dsg::par::phase_name;
using dsg::par::Profiler;

TEST(Profiler, DisabledScopesCostNothingAndRecordNothing) {
    Profiler::set_enabled(false);
    Profiler::reset();
    {
        Profiler::Scope scope(Phase::LocalMult);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(Profiler::total_seconds(Phase::LocalMult), 0.0);
}

TEST(Profiler, EnabledScopesAccumulate) {
    Profiler::set_enabled(true);
    Profiler::reset();
    {
        Profiler::Scope scope(Phase::Bcast);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    {
        Profiler::Scope scope(Phase::Bcast);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    Profiler::set_enabled(false);
    const double t = Profiler::total_seconds(Phase::Bcast);
    EXPECT_GE(t, 0.008);
    EXPECT_LT(t, 1.0);
    EXPECT_EQ(Profiler::total_seconds(Phase::LocalMult), 0.0);
}

TEST(Profiler, ResetClears) {
    Profiler::set_enabled(true);
    {
        Profiler::Scope scope(Phase::Scatter);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Profiler::set_enabled(false);
    EXPECT_GT(Profiler::total_seconds(Phase::Scatter), 0.0);
    Profiler::reset();
    EXPECT_EQ(Profiler::total_seconds(Phase::Scatter), 0.0);
}

TEST(Profiler, AccumulatesAcrossThreads) {
    Profiler::set_enabled(true);
    Profiler::reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            Profiler::Scope scope(Phase::ReduceScatter);
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
        });
    for (auto& t : threads) t.join();
    Profiler::set_enabled(false);
    // Four concurrent 3ms scopes sum to >= 12ms of phase time.
    EXPECT_GE(Profiler::total_seconds(Phase::ReduceScatter), 0.010);
}

TEST(Profiler, PhaseNamesMatchTheFigures) {
    EXPECT_EQ(phase_name(Phase::RedistSort), "Redist. sort");
    EXPECT_EQ(phase_name(Phase::RedistComm), "Redist. comm.");
    EXPECT_EQ(phase_name(Phase::MemManagement), "Mem. management");
    EXPECT_EQ(phase_name(Phase::LocalConstruct), "Local construct.");
    EXPECT_EQ(phase_name(Phase::LocalAddition), "Local addition");
    EXPECT_EQ(phase_name(Phase::SendRecv), "Send/Recv");
    EXPECT_EQ(phase_name(Phase::Bcast), "Bcast");
    EXPECT_EQ(phase_name(Phase::LocalMult), "Local Mult.");
    EXPECT_EQ(phase_name(Phase::Scatter), "Scatter");
    EXPECT_EQ(phase_name(Phase::ReduceScatter), "Reduce Scatter");
}

// The drift guard: the label table is pinned to the enum at compile time
// (static_assert on kPhaseNames.size()); here we prove the table's CONTENT
// is sound — no enumerator maps to an empty, placeholder, or duplicated
// label — so a new Phase added without a real name fails loudly instead of
// rendering garbage in traces and figure legends.
TEST(Profiler, EveryPhaseHasADistinctRealLabel) {
    static_assert(dsg::par::kPhaseNames.size() == dsg::par::kPhaseCount);
    for (std::size_t k = 0; k < dsg::par::kPhaseCount; ++k) {
        const auto name = phase_name(static_cast<Phase>(k));
        EXPECT_FALSE(name.empty()) << "Phase " << k << " has no label";
        EXPECT_NE(name, "?") << "Phase " << k << " has a placeholder label";
        for (std::size_t j = 0; j < k; ++j)
            EXPECT_NE(name, phase_name(static_cast<Phase>(j)))
                << "Phases " << j << " and " << k << " share a label";
    }
    // Out-of-range values degrade to "?" instead of reading past the table.
    EXPECT_EQ(phase_name(Phase::kCount), "?");
    EXPECT_EQ(phase_name(static_cast<Phase>(-1)), "?");
}

}  // namespace
