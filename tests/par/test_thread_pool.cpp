#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/thread_pool.hpp"

namespace {

using dsg::par::ThreadPool;

class ThreadPoolP : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolP, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(GetParam());
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolP, SumMatchesSequential) {
    ThreadPool pool(GetParam());
    const std::size_t n = 5'000;
    std::atomic<long long> sum{0};
    pool.parallel_for(n, [&](int, std::size_t b, std::size_t e) {
        long long local = 0;
        for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(i);
        sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST_P(ThreadPoolP, ThreadIndexInRange) {
    ThreadPool pool(GetParam());
    std::atomic<bool> ok{true};
    pool.parallel_for(1'000, [&](int t, std::size_t, std::size_t) {
        if (t < 0 || t >= pool.thread_count()) ok = false;
    });
    EXPECT_TRUE(ok.load());
}

TEST_P(ThreadPoolP, ReusableAcrossManyJobs) {
    ThreadPool pool(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        std::atomic<int> count{0};
        pool.parallel_for(100, [&](int, std::size_t b, std::size_t e) {
            count.fetch_add(static_cast<int>(e - b));
        });
        ASSERT_EQ(count.load(), 100);
    }
}

TEST_P(ThreadPoolP, PropagatesExceptions) {
    ThreadPool pool(GetParam());
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](int, std::size_t b, std::size_t) {
                              if (b == 0) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // Pool must stay usable after a failed job.
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](int, std::size_t b, std::size_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 10);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolP, ::testing::Values(1, 2, 4, 7));

TEST(ThreadPool, ZeroIterationsIsNoop) {
    ThreadPool pool(4);
    bool called = false;
    pool.parallel_for(0, [&](int, std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1);
}

}  // namespace
