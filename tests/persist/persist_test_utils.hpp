// Shared fixtures for the durability tests: unique scratch directories and
// exact (bit-level) comparison of gathered distributed matrices.
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dist_matrix.hpp"
#include "sparse/types.hpp"

namespace dsg::test {

/// Creates (and on success removes) a unique scratch directory per test.
/// Left behind on failure so the durable state can be inspected.
class ScratchDir {
public:
    ScratchDir() {
        static std::atomic<int> counter{0};
        const auto base = std::filesystem::temp_directory_path();
        path_ = base / ("dsg-persist-" + std::to_string(::getpid()) + "-" +
                        std::to_string(counter.fetch_add(1)));
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir() {
        if (!::testing::Test::HasFailure()) {
            std::error_code ec;
            std::filesystem::remove_all(path_, ec);
        }
    }
    [[nodiscard]] const std::filesystem::path& path() const { return path_; }

private:
    std::filesystem::path path_;
};

/// Gathered global triples, sorted by coordinate — the canonical image two
/// runs are compared by. Values are NOT rounded: recovery promises
/// bit-identical state, so comparisons use exact equality.
inline std::vector<sparse::Triple<double>> sorted_global(
    const core::DistDynamicMatrix<double>& m) {
    auto ts = m.gather_global();
    std::sort(ts.begin(), ts.end(), [](const auto& a, const auto& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    return ts;
}

inline void expect_bit_identical(
    const std::vector<sparse::Triple<double>>& got,
    const std::vector<sparse::Triple<double>>& want, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t k = 0; k < got.size(); ++k) {
        ASSERT_EQ(got[k].row, want[k].row) << what << " entry " << k;
        ASSERT_EQ(got[k].col, want[k].col) << what << " entry " << k;
        ASSERT_EQ(got[k].value, want[k].value)
            << what << " value at (" << got[k].row << ", " << got[k].col
            << ")";
    }
}

}  // namespace dsg::test
