// Checkpoint/manifest unit tests: framed-file atomicity and validation,
// tile round trips, manifest commit semantics, retention helpers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "persist/checkpoint.hpp"
#include "persist/persist_test_utils.hpp"
#include "sparse/dynamic_matrix.hpp"

namespace {

using dsg::sparse::DynamicMatrix;
using dsg::sparse::index_t;
using dsg::test::ScratchDir;
namespace persist = dsg::persist;
namespace fs = std::filesystem;

DynamicMatrix<double> sample_tile(index_t rows, index_t cols, int salt) {
    DynamicMatrix<double> m(rows, cols);
    for (index_t i = 0; i < rows; ++i)
        for (index_t j = i % 3; j < cols; j += 3)
            m.insert_or_assign(i, j, static_cast<double>(salt) + 0.25 *
                                         static_cast<double>(i * cols + j));
    // A deletion so the restored entry order must reproduce the swap-erase
    // layout, not just the set of entries.
    m.erase(0, 0);
    return m;
}

TEST(Checkpoint, TileAndExtraStateRoundTrip) {
    ScratchDir dir;
    const auto tile = sample_tile(12, 9, 3);
    dsg::par::Buffer extra;
    dsg::par::BufferWriter w(extra);
    w.write<std::uint64_t>(0xfeedbeefu);

    persist::write_checkpoint_file<double>(dir.path(), 40, 1, 2, 1, 24, 18,
                                           tile, extra);
    auto loaded = persist::read_checkpoint_file<double>(dir.path(), 40, 1, 2,
                                                        1, 24, 18);
    EXPECT_EQ(loaded.tile.nnz(), tile.nnz());
    EXPECT_EQ(loaded.tile.to_triples(), tile.to_triples())
        << "entry order must survive bit-identically";
    dsg::par::BufferReader r(loaded.extra_state);
    EXPECT_EQ(r.read<std::uint64_t>(), 0xfeedbeefu);

    // Any disagreement with the manifest-provided expectations throws.
    EXPECT_THROW((persist::read_checkpoint_file<double>(dir.path(), 40, 1, 3,
                                                        1, 24, 18)),
                 persist::PersistError);
    EXPECT_THROW((persist::read_checkpoint_file<double>(dir.path(), 40, 1, 2,
                                                        2, 24, 18)),
                 persist::PersistError)
        << "grid column count disagreement must throw";
    EXPECT_THROW((persist::read_checkpoint_file<double>(dir.path(), 41, 1, 2,
                                                        1, 24, 18)),
                 persist::PersistError)
        << "missing version must not silently fall back";
}

TEST(Checkpoint, CorruptFileIsRejected) {
    ScratchDir dir;
    persist::write_checkpoint_file<double>(dir.path(), 8, 0, 1, 1, 6, 6,
                                           sample_tile(6, 6, 1), {});
    const auto path = persist::checkpoint_path(dir.path(), 8, 0);
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(40);
        f.put('\x7f');
    }
    EXPECT_THROW(
        (persist::read_checkpoint_file<double>(dir.path(), 8, 0, 1, 1, 6, 6)),
        persist::PersistError);
}

TEST(Checkpoint, ManifestCommitAndReRead) {
    ScratchDir dir;
    EXPECT_EQ(persist::read_manifest(dir.path()), std::nullopt);

    persist::Manifest m;
    m.version = 128;
    m.grid_rows = 2;
    m.grid_cols = 2;
    m.nrows = 1024;
    m.ncols = 512;
    m.log = {{3, 100}, {3, 80}, {2, 999}, {3, persist::kLogHeaderBytes}};
    persist::write_manifest(dir.path(), m);

    auto got = persist::read_manifest(dir.path());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->version, 128u);
    EXPECT_EQ(got->grid_rows, 2);
    EXPECT_EQ(got->grid_cols, 2);
    EXPECT_EQ(got->nrows, 1024);
    EXPECT_EQ(got->ncols, 512);
    EXPECT_EQ(got->log, m.log);

    // A newer manifest atomically replaces the old one.
    m.version = 256;
    m.log = {{5, 20}, {5, 20}, {5, 20}, {5, 20}};
    persist::write_manifest(dir.path(), m);
    EXPECT_EQ(persist::read_manifest(dir.path())->version, 256u);

    // Truncation (a torn manifest could only come from fs corruption — the
    // write is tmp + rename) is detected, not trusted.
    persist::truncate_file(persist::manifest_path(dir.path()), 10);
    EXPECT_THROW((void)persist::read_manifest(dir.path()),
                 persist::PersistError);
}

TEST(Checkpoint, RectangularManifestRoundTrips) {
    ScratchDir dir;
    persist::Manifest m;
    m.version = 9;
    m.grid_rows = 2;
    m.grid_cols = 3;
    m.nrows = 100;
    m.ncols = 90;
    m.log = {{0, 20}, {0, 20}, {0, 20}, {0, 20}, {0, 20}, {0, 20}};
    persist::write_manifest(dir.path(), m);
    auto got = persist::read_manifest(dir.path());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->grid_rows, 2);
    EXPECT_EQ(got->grid_cols, 3);
    EXPECT_EQ(got->log.size(), 6u);
}

TEST(Checkpoint, ManifestGridLogMismatchRejected) {
    ScratchDir dir;
    persist::Manifest m;
    m.version = 1;
    m.grid_rows = 2;
    m.grid_cols = 2;
    m.nrows = m.ncols = 64;
    m.log = {{0, 20}};  // 1 position for a 4-rank grid: corrupt
    persist::write_manifest(dir.path(), m);
    EXPECT_THROW((void)persist::read_manifest(dir.path()),
                 persist::PersistError);
}

TEST(Checkpoint, RetentionDeletesOnlyOlderFilesOfTheRank) {
    ScratchDir dir;
    for (std::uint64_t v : {8u, 16u, 24u})
        for (int rank : {0, 1})
            persist::write_checkpoint_file<double>(dir.path(), v, rank, 1, 2,
                                                   6, 6, sample_tile(3, 3, 1),
                                                   {});
    EXPECT_EQ(persist::delete_checkpoints_below(dir.path(), 0, 24), 2u);
    EXPECT_FALSE(fs::exists(persist::checkpoint_path(dir.path(), 8, 0)));
    EXPECT_FALSE(fs::exists(persist::checkpoint_path(dir.path(), 16, 0)));
    EXPECT_TRUE(fs::exists(persist::checkpoint_path(dir.path(), 24, 0)));
    EXPECT_TRUE(fs::exists(persist::checkpoint_path(dir.path(), 8, 1)));
}

TEST(Checkpoint, EmptyTileRoundTrips) {
    ScratchDir dir;
    DynamicMatrix<double> empty(5, 7);
    persist::write_checkpoint_file<double>(dir.path(), 1, 0, 1, 1, 5, 7, empty,
                                           {});
    auto loaded =
        persist::read_checkpoint_file<double>(dir.path(), 1, 0, 1, 1, 5, 7);
    EXPECT_EQ(loaded.tile.nnz(), 0u);
    EXPECT_EQ(loaded.tile.nrows(), 5);
    EXPECT_EQ(loaded.tile.ncols(), 7);
    EXPECT_TRUE(loaded.extra_state.empty());
}

}  // namespace
