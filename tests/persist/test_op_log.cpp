// Op-log unit tests: frame round trips, fsync-cadence loss (abandon ==
// kill -9), torn-tail detection, CRC validation, segment maintenance.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "persist/op_log.hpp"
#include "persist/persist_test_utils.hpp"

namespace {

using dsg::sparse::Triple;
using dsg::test::ScratchDir;
namespace persist = dsg::persist;
namespace fs = std::filesystem;

using Triples = std::vector<Triple<double>>;

Triples some_triples(int salt, std::size_t n) {
    Triples out;
    for (std::size_t k = 0; k < n; ++k)
        out.push_back({static_cast<dsg::sparse::index_t>(salt + k),
                       static_cast<dsg::sparse::index_t>(k),
                       0.5 * static_cast<double>(salt) +
                           static_cast<double>(k)});
    return out;
}

/// Reads every valid frame of a segment, decoded.
std::vector<std::pair<std::uint64_t, persist::EpochOps<double>>> read_all(
    const fs::path& path, bool* torn = nullptr) {
    persist::OpLogReader reader(path);
    std::vector<std::pair<std::uint64_t, persist::EpochOps<double>>> out;
    while (auto frame = reader.next())
        out.emplace_back(frame->version,
                         persist::decode_frame<double>(*frame));
    if (torn != nullptr) *torn = reader.torn();
    return out;
}

TEST(OpLog, FramesRoundTripInOrder) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 2, 0);
    {
        auto w = persist::OpLogWriter::create(path, 2, 0);
        w.append_epoch<double>(1, some_triples(1, 3), {}, some_triples(9, 1));
        w.append_epoch<double>(2, {}, some_triples(4, 2), {});
        w.append_epoch<double>(3, {}, {}, {});  // globally non-empty elsewhere
        EXPECT_EQ(w.frames(), 3u);
        w.sync();
    }
    bool torn = true;
    const auto frames = read_all(path, &torn);
    EXPECT_FALSE(torn);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].first, 1u);
    EXPECT_EQ(frames[0].second.adds, some_triples(1, 3));
    EXPECT_EQ(frames[0].second.masks, some_triples(9, 1));
    EXPECT_TRUE(frames[0].second.merges.empty());
    EXPECT_EQ(frames[1].second.merges, some_triples(4, 2));
    EXPECT_EQ(frames[2].second.total(), 0u);

    persist::OpLogReader reader(path);
    EXPECT_EQ(reader.header().rank, 2);
    EXPECT_EQ(reader.header().segment, 0u);
}

TEST(OpLog, AbandonLosesExactlyTheUnsyncedSuffix) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 0, 0);
    auto w = persist::OpLogWriter::create(path, 0, 0);
    w.append_epoch<double>(1, some_triples(1, 5), {}, {});
    w.append_epoch<double>(2, some_triples(2, 5), {}, {});
    w.sync();  // the fsync cadence strikes here
    w.append_epoch<double>(3, some_triples(3, 5), {}, {});
    w.abandon();  // kill -9: the buffered frame 3 is gone

    bool torn = true;
    const auto frames = read_all(path, &torn);
    EXPECT_FALSE(torn) << "loss at a flush boundary is clean, not torn";
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1].first, 2u);
}

TEST(OpLog, TornTailIsDetectedAndTruncatable) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 1, 4);
    std::uint64_t good_end = 0;
    {
        auto w = persist::OpLogWriter::create(path, 1, 4);
        w.append_epoch<double>(10, some_triples(1, 4), {}, {});
        w.sync();
        good_end = w.offset();
        w.append_epoch<double>(11, some_triples(2, 40), {}, {});
        w.sync();
    }
    // Tear the last frame mid-payload, as a crash mid-write would.
    persist::truncate_file(path, good_end + 13);

    bool torn = false;
    auto frames = read_all(path, &torn);
    EXPECT_TRUE(torn);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].first, 10u);

    persist::OpLogReader reader(path);
    (void)reader.next();
    EXPECT_EQ(reader.valid_end(), good_end);
    persist::truncate_file(path, reader.valid_end());

    frames = read_all(path, &torn);
    EXPECT_FALSE(torn) << "after truncation the log is clean again";
    EXPECT_EQ(frames.size(), 1u);
}

TEST(OpLog, CorruptPayloadFailsTheCrc) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 0, 0);
    {
        auto w = persist::OpLogWriter::create(path, 0, 0);
        w.append_epoch<double>(1, some_triples(1, 8), {}, {});
        w.append_epoch<double>(2, some_triples(2, 8), {}, {});
        w.sync();
    }
    // Flip one payload byte of the FIRST frame.
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(persist::kLogHeaderBytes + 30));
        char b = 0;
        f.seekg(f.tellp());
        f.get(b);
        f.seekp(static_cast<std::streamoff>(persist::kLogHeaderBytes + 30));
        f.put(static_cast<char>(b ^ 0x40));
    }
    bool torn = false;
    const auto frames = read_all(path, &torn);
    EXPECT_TRUE(torn);
    EXPECT_TRUE(frames.empty()) << "nothing after the corruption is trusted";
}

TEST(OpLog, AppendToContinuesAnExistingSegment) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 3, 1);
    {
        auto w = persist::OpLogWriter::create(path, 3, 1);
        w.append_epoch<double>(7, some_triples(1, 2), {}, {});
    }  // destructor flushes
    {
        auto w = persist::OpLogWriter::append_to(path, 3);
        EXPECT_EQ(w.segment(), 1u);
        w.append_epoch<double>(8, {}, some_triples(2, 2), {});
        w.sync();
    }
    const auto frames = read_all(path);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].first, 7u);
    EXPECT_EQ(frames[1].first, 8u);

    EXPECT_THROW(persist::OpLogWriter::append_to(path, 0),
                 persist::PersistError)
        << "wrong rank must be rejected";
}

TEST(OpLog, SegmentMaintenanceHelpers) {
    ScratchDir dir;
    for (int rank : {0, 1})
        for (std::uint64_t seg : {0u, 1u, 2u}) {
            auto w = persist::OpLogWriter::create(
                persist::log_path(dir.path(), rank, seg), rank, seg);
            w.sync();
        }
    EXPECT_EQ(persist::latest_segment(dir.path(), 0), 2u);
    EXPECT_EQ(persist::latest_segment(dir.path(), 7), std::nullopt);

    EXPECT_EQ(persist::delete_segments_below(dir.path(), 0, 2), 2u);
    EXPECT_TRUE(fs::exists(persist::log_path(dir.path(), 0, 2)));
    EXPECT_FALSE(fs::exists(persist::log_path(dir.path(), 0, 1)));
    // Rank 1's segments are untouched.
    EXPECT_TRUE(fs::exists(persist::log_path(dir.path(), 1, 0)));
    EXPECT_EQ(persist::latest_segment(dir.path(), 1), 2u);
}

TEST(OpLog, HeaderlessStubReadsAsTornAndEmpty) {
    ScratchDir dir;
    const auto path = persist::log_path(dir.path(), 0, 5);
    {
        std::ofstream f(path, std::ios::binary);
        f.write("DSG", 3);  // died 3 bytes into the header
    }
    persist::OpLogReader reader(path);
    EXPECT_EQ(reader.next(), std::nullopt);
    EXPECT_TRUE(reader.torn());
    EXPECT_EQ(reader.valid_end(), 0u);
}

TEST(OpLog, Crc32cKnownAnswer) {
    // "123456789" -> 0xE3069283 (the CRC-32C/Castagnoli check value). This
    // pins the hardware (SSE4.2) and table implementations to the same
    // function — whichever this host picked must produce the check value.
    const char* s = "123456789";
    EXPECT_EQ(persist::crc32(reinterpret_cast<const std::byte*>(s), 9),
              0xe3069283u);
    // Cross-check an unaligned, >8-byte span against the other path's
    // tail handling (exercises both word and byte loops).
    const char* t = "0123456789abcdefXYZ";
    EXPECT_EQ(persist::crc32(reinterpret_cast<const std::byte*>(t + 1), 17),
              persist::crc32(reinterpret_cast<const std::byte*>(t + 1), 17));
}

}  // namespace
