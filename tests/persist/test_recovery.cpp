// Crash-recovery property tests: checkpoint → kill → recover → replay must
// reproduce the uninterrupted run bit-identically — matrix structure, entry
// order, values, engine version, and (when subscribed) every maintained
// analytics value — across all workload scenarios and all supported grids,
// square and rectangular (the shared grid-shape sweep: 1x1, 1x2, 1x3, 2x2,
// 2x3, plus the extended shapes under -DDSG_GRID_SHAPES=extended).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "common/grid_shapes.hpp"
#include "analytics/maintainer.hpp"
#include "core/update_ops.hpp"
#include "par/comm.hpp"
#include "persist/durability.hpp"
#include "persist/op_log.hpp"
#include "persist/recovery.hpp"
#include "persist/persist_test_utils.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

namespace {

using namespace dsg;
using test::ScratchDir;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using Manager = persist::DurabilityManager<SR>;
using sparse::index_t;
using sparse::Triple;
using dsg::test::GridCase;

/// Streams `writes` ops per producer (2 producers/rank) of `scenario` into
/// A under a durability manager, returning after the queues are exhausted.
void stream_with_durability(par::Comm& comm, Engine& engine,
                            stream::Scenario scenario, index_t n,
                            std::size_t writes, std::uint64_t seed_base) {
    constexpr int kProducers = 2;
    stream::WorkloadConfig wl;
    wl.scenario = scenario;
    wl.n = n;
    wl.writes = writes;
    wl.window = 96;
    wl.seed = seed_base + 13 * static_cast<std::uint64_t>(comm.rank());

    for (int prod = 0; prod < kProducers; ++prod)
        engine.queue().register_producer();
    std::vector<std::thread> producers;
    for (int prod = 0; prod < kProducers; ++prod)
        producers.emplace_back([&engine, wl, prod] {
            stream::drive_producer(engine,
                                   stream::WorkloadProducer(wl, prod),
                                   [](index_t, index_t) {});
        });
    engine.run();
    for (auto& t : producers) t.join();
}

/// The core property, one (grid shape, scenario) cell: a full durable run,
/// then recovery in a fresh world must reproduce its final state exactly.
void check_recovery_equivalence(const GridCase& gc,
                                stream::Scenario scenario) {
    SCOPED_TRACE(std::string("scenario ") + stream::scenario_name(scenario) +
                 ", grid " + std::to_string(gc.rows) + "x" +
                 std::to_string(gc.cols));
    ScratchDir dir;
    const index_t n = 256;
    std::vector<Triple<double>> live;
    std::uint64_t live_version = 0;

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.epoch_batch = 256;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);

        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.fsync_every = 4;
        pc.checkpoint_stride = 4;  // several checkpoints per run
        Manager mgr(engine, A, pc, Manager::Start::Fresh);

        stream_with_durability(comm, engine, scenario, n, 800,
                               500 + static_cast<std::uint64_t>(scenario));
        EXPECT_GT(mgr.stats().epochs_logged, 0u);

        const auto g = test::sorted_global(A);  // collective
        const auto v = engine.with_snapshot(
            [](core::SnapshotView<double> s) { return s.version(); });
        if (comm.rank() == 0) {
            live = g;
            live_version = v;
        }
    });
    ASSERT_FALSE(live.empty());

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        core::DistDynamicMatrix<double> A(grid, n, n);
        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts);
        EXPECT_EQ(res.recovered_version, live_version);
        EXPECT_FALSE(res.truncated_tail)
            << "a graceful shutdown leaves nothing to truncate";
        const auto g = test::sorted_global(A);  // collective
        if (comm.rank() == 0)
            test::expect_bit_identical(g, live, "recovered matrix");
    });
}

class RecoveryG : public ::testing::TestWithParam<GridCase> {};

TEST_P(RecoveryG, BitIdenticalAcrossAllScenarios) {
    for (auto scenario : stream::all_scenarios())
        check_recovery_equivalence(GetParam(), scenario);
}

// With maintainers subscribed, the checkpoint carries the hub's state and
// replay drives on_epoch exactly like live traffic: every maintained value
// (and the maintainers' internal matrices) must come back bit-identical.
TEST(Recovery, AnalyticsMaintainersRestoredBitIdentically) {
    constexpr int kRanks = 4;
    const index_t n = 128;
    const std::vector<index_t> sources = {0, 1, 2};
    ScratchDir dir;
    std::vector<std::pair<std::string, double>> live_snapshots;
    std::vector<Triple<double>> live_triangles_adj;
    std::uint64_t live_version = 0;

    auto build_hub = [&](core::ProcessGrid& grid,
                         analytics::AnalyticsHub<double>& hub)
        -> analytics::LiveTriangleMaintainer& {
        auto& tri = hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);
        hub.emplace<analytics::LiveDistanceMaintainer>(grid, n, sources);
        return tri;
    };

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = build_hub(grid, hub);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 128;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        hub.attach(engine);

        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.fsync_every = 2;
        pc.checkpoint_stride = 3;
        Manager mgr(engine, A, pc, Manager::Start::Fresh, &hub);

        stream_with_durability(comm, engine,
                               stream::Scenario::CheckpointUnderLoad, n, 400,
                               900);
        const auto adj = test::sorted_global(tri.counter().adjacency());
        const auto v = engine.with_snapshot(
            [](core::SnapshotView<double> s) { return s.version(); });
        if (comm.rank() == 0) {
            live_snapshots = hub.snapshots();
            live_triangles_adj = adj;
            live_version = v;
        }
    });
    ASSERT_FALSE(live_snapshots.empty());

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        analytics::AnalyticsHub<double> hub;
        auto& tri = build_hub(grid, hub);

        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts, &hub);
        EXPECT_EQ(res.recovered_version, live_version);

        const auto got = hub.snapshots();
        const auto adj = test::sorted_global(tri.counter().adjacency());
        if (comm.rank() == 0) {
            ASSERT_EQ(got.size(), live_snapshots.size());
            for (std::size_t k = 0; k < got.size(); ++k) {
                EXPECT_EQ(got[k].first, live_snapshots[k].first);
                EXPECT_EQ(got[k].second, live_snapshots[k].second)
                    << "maintained value '" << got[k].first
                    << "' must restore bit-identically";
            }
            test::expect_bit_identical(adj, live_triangles_adj,
                                       "maintained adjacency");
        }
    });
}

// A mid-run kill: whatever the fsync cadence already made durable (plus a
// deliberate torn tail on one rank) must recover to the last epoch durable
// on EVERY rank, and the recovered matrix must equal an independent direct
// replay of the surviving log — the engine path and the raw apply path
// cross-check each other.
TEST_P(RecoveryG, KillMidRunRecoversTheDurablePrefix) {
    const GridCase gc = GetParam();
    const index_t n = 192;
    ScratchDir dir;

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.epoch_batch = 128;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);

        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.fsync_every = 2;          // lose at most 1 buffered epoch
        pc.checkpoint_stride = 5;
        Manager mgr(engine, A, pc, Manager::Start::Fresh);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::KillAndRecover;
        wl.n = n;
        wl.writes = 900;
        wl.seed = 77 + static_cast<std::uint64_t>(comm.rank());
        engine.queue().register_producer();
        std::thread producer([&engine, wl] {
            stream::drive_producer(engine, stream::WorkloadProducer(wl, 0),
                                   [](index_t, index_t) {});
        });
        // Pump a fixed number of epochs, then die: the abandon drops the
        // unflushed WAL buffer exactly like a kill -9 drops the page cache.
        for (int e = 0; e < 6; ++e) engine.pump();
        mgr.simulate_crash();
        engine.run();  // drain the rest so the world can exit cleanly
        producer.join();
    });

    // Tear the last durable frame of the highest rank mid-payload: ranks now
    // disagree about the last durable epoch, and recovery must settle on the
    // minimum.
    {
        const int victim = gc.p() - 1;
        const auto seg = persist::latest_segment(dir.path(), victim);
        ASSERT_TRUE(seg.has_value());
        const auto path = persist::log_path(dir.path(), victim, *seg);
        const auto size = std::filesystem::file_size(path);
        if (size > persist::kLogHeaderBytes + 8)
            persist::truncate_file(path, size - 5);
    }

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        core::DistDynamicMatrix<double> A(grid, n, n);
        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts);
        EXPECT_LE(res.recovered_version, 6u);

        // Independent reference: apply the surviving log (recover() already
        // truncated it to the agreed prefix) through the raw update path.
        core::DistDynamicMatrix<double> B(grid, n, n);
        std::uint64_t applied = 0;
        const auto manifest = persist::read_manifest(dir.path());
        std::uint64_t seg = 0;
        std::uint64_t offset = 0;
        if (manifest) {
            // Restore the checkpoint tile as the replay base.
            auto ckpt = persist::read_checkpoint_file<double>(
                dir.path(), manifest->version, comm.rank(), grid.rows(),
                grid.cols(), n, n);
            B.local() = ckpt.tile;
            applied = manifest->version;
            seg = manifest->log[static_cast<std::size_t>(comm.rank())].segment;
            offset = manifest->log[static_cast<std::size_t>(comm.rank())].offset;
        }
        for (;; ++seg) {
            const auto path = persist::log_path(dir.path(), comm.rank(), seg);
            std::vector<persist::EpochOps<double>> epochs;
            if (std::filesystem::exists(path)) {
                persist::OpLogReader reader(path);
                if (offset > 0) {
                    reader.seek(offset);
                    offset = 0;
                }
                while (auto frame = reader.next())
                    epochs.push_back(persist::decode_frame<double>(*frame));
                EXPECT_FALSE(reader.torn()) << "recover() must have truncated";
            }
            // Every rank walks the same number of segments/epochs after the
            // recovery truncation, so the collective applies stay aligned.
            const auto more = comm.allreduce<std::uint8_t>(
                std::filesystem::exists(path) ? 1 : 0,
                [](std::uint8_t a, std::uint8_t b) {
                    return static_cast<std::uint8_t>(a | b);
                });
            if (more == 0) break;
            for (const auto& ops : epochs) {
                auto ua = core::build_update_matrix(grid, n, n, ops.adds);
                core::add_update<SR>(B, ua);
                auto um = core::build_update_matrix(grid, n, n, ops.merges);
                core::merge_update(B, um);
                auto ud = core::build_update_matrix(grid, n, n, ops.masks);
                core::mask_delete(B, ud);
                ++applied;
            }
        }
        EXPECT_EQ(applied, res.recovered_version);

        const auto got = test::sorted_global(A);
        const auto want = test::sorted_global(B);
        if (comm.rank() == 0)
            test::expect_bit_identical(got, want,
                                       "engine replay vs direct replay");
    });
}

// Restart after recovery: a Resume-mode manager appends to the truncated
// log, new checkpoints supersede the old generation, and a SECOND recovery
// reproduces the resumed run's final state.
TEST(Recovery, ResumeContinuesDurablyAcrossRestarts) {
    constexpr int kRanks = 4;
    const index_t n = 256;
    ScratchDir dir;
    std::vector<Triple<double>> final_state;
    std::uint64_t final_version = 0;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.epoch_batch = 192;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.fsync_every = 3;
        pc.checkpoint_stride = 3;
        Manager mgr(engine, A, pc, Manager::Start::Fresh);
        stream_with_durability(comm, engine,
                               stream::Scenario::SlidingWindowDelete, n, 700,
                               1100);
    });

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 192;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        cfg.initial_version = res.recovered_version;
        Engine engine(A, cfg);
        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.fsync_every = 3;
        pc.checkpoint_stride = 3;
        Manager mgr(engine, A, pc, Manager::Start::Resume);
        stream_with_durability(comm, engine, stream::Scenario::HotVertexSkew,
                               n, 500, 2300);

        const auto g = test::sorted_global(A);
        const auto v = engine.with_snapshot(
            [](core::SnapshotView<double> s) { return s.version(); });
        EXPECT_GT(v, res.recovered_version) << "the resumed run made progress";
        if (comm.rank() == 0) {
            final_state = g;
            final_version = v;
        }
    });

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts);
        EXPECT_EQ(res.recovered_version, final_version);
        const auto g = test::sorted_global(A);
        if (comm.rank() == 0)
            test::expect_bit_identical(g, final_state,
                                       "second recovery after resume");
    });
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, RecoveryG,
    ::testing::ValuesIn(dsg::test::grid_shape_cases_sync_only()),
    dsg::test::grid_case_name);

TEST(Recovery, ColdDirectoryRecoversToEmptyVersionZero) {
    ScratchDir dir;
    par::run_world(1, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, 64, 64);
        persist::RecoveryOptions opts;
        opts.dir = dir.path();
        const auto res = persist::recover<SR>(A, opts);
        EXPECT_FALSE(res.had_checkpoint);
        EXPECT_EQ(res.recovered_version, 0u);
        EXPECT_EQ(res.replayed_epochs, 0u);
        EXPECT_EQ(A.global_nnz(), 0u);
    });
}

TEST(Recovery, WrongGridIsRejectedNotMisread) {
    ScratchDir dir;
    const index_t n = 128;
    par::run_world(4, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, n, n);
        Engine engine(A);
        persist::PersistConfig pc;
        pc.dir = dir.path();
        pc.checkpoint_stride = 1;
        Manager mgr(engine, A, pc, Manager::Start::Fresh);
        stream_with_durability(comm, engine,
                               stream::Scenario::SustainedUniform, n, 300,
                               3100);
    });
    EXPECT_THROW(
        par::run_world(1,
                       [&](par::Comm& comm) {
                           core::ProcessGrid grid(comm);
                           core::DistDynamicMatrix<double> A(grid, n, n);
                           persist::RecoveryOptions opts;
                           opts.dir = dir.path();
                           (void)persist::recover<SR>(A, opts);
                       }),
        persist::PersistError);
}

}  // namespace
