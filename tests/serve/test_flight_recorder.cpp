// The slow-query flight recorder: worst-K retention and ordering, the
// atomic-floor fast-reject path, concurrent submitters (the TSan-exercised
// part), the JSON dump, and end-to-end recording through a QueryExecutor.
#include "serve/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "serve/query_executor.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"

namespace {

using namespace dsg;
using serve::FlightRecorder;
using serve::QueryKind;
using serve::QueryStatus;

FlightRecorder::Entry entry(std::uint64_t qid, std::uint64_t total_ns) {
    FlightRecorder::Entry e;
    e.qid = qid;
    e.total_ns = total_ns;
    e.execute_ns = total_ns;
    return e;
}

TEST(FlightRecorder, RetainsTheKSlowestInOrder) {
    FlightRecorder rec(4);
    // Offer 1..10 ms in shuffled order; only {7,8,9,10} may survive.
    for (const std::uint64_t ms : {3, 9, 1, 7, 10, 2, 8, 5, 4, 6})
        rec.record(entry(ms, ms * 1'000'000));
    EXPECT_EQ(rec.offered(), 10u);
    EXPECT_EQ(rec.capacity(), 4u);
    const auto worst = rec.worst();
    ASSERT_EQ(worst.size(), 4u);
    // Slowest first, strictly ordered.
    EXPECT_EQ(worst[0].qid, 10u);
    EXPECT_EQ(worst[1].qid, 9u);
    EXPECT_EQ(worst[2].qid, 8u);
    EXPECT_EQ(worst[3].qid, 7u);
}

TEST(FlightRecorder, BelowFloorEntriesAreRejected) {
    FlightRecorder rec(2);
    rec.record(entry(1, 100));
    rec.record(entry(2, 200));
    // The floor is now 100 ns; equal-or-below offers can't displace.
    rec.record(entry(3, 100));
    rec.record(entry(4, 50));
    auto worst = rec.worst();
    ASSERT_EQ(worst.size(), 2u);
    EXPECT_EQ(worst[0].qid, 2u);
    EXPECT_EQ(worst[1].qid, 1u);
    // A strictly slower offer evicts the fastest retained entry.
    rec.record(entry(5, 150));
    worst = rec.worst();
    EXPECT_EQ(worst[0].qid, 2u);
    EXPECT_EQ(worst[1].qid, 5u);
    EXPECT_EQ(rec.offered(), 5u);
}

TEST(FlightRecorder, JsonDumpCarriesTheSchema) {
    FlightRecorder rec(2);
    FlightRecorder::Entry e;
    e.qid = 42;
    e.kind = QueryKind::KHop;
    e.status = QueryStatus::Ok;
    e.cache_hit = true;
    e.snapshot_version = 7;
    e.snapshot_lag = 2;
    e.admission_wait_ns = 1000;
    e.execute_ns = 2000;
    e.total_ns = 3000;
    rec.record(e);
    const std::string json = rec.to_json();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"qid\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"class\": \"k-hop\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos);
    EXPECT_NE(json.find("\"snapshot_version\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"snapshot_lag\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"admission_wait_ns\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"total_ns\": 3000"), std::string::npos);
}

// The TSan-exercised part: many threads offering interleaved latencies.
// The retained set must be exactly the K slowest offers regardless of
// interleaving (total_ns values are all distinct by construction).
TEST(FlightRecorder, ConcurrentOffersRetainExactlyTheSlowest) {
    constexpr std::size_t kK = 8;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 2'000;
    FlightRecorder rec(kK);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (std::uint64_t k = 0; k < kPerThread; ++k) {
                // Distinct latencies across all threads; the global maxima
                // are scattered over every thread's stream.
                const std::uint64_t total =
                    1 + k * kThreads + static_cast<std::uint64_t>(t);
                rec.record(entry(total, total));
            }
        });
    for (auto& th : threads) th.join();

    EXPECT_EQ(rec.offered(), kThreads * kPerThread);
    const auto worst = rec.worst();
    ASSERT_EQ(worst.size(), kK);
    // The K slowest offered latencies are exactly
    // {N, N-1, ..., N-K+1} where N = kThreads * kPerThread.
    const std::uint64_t n = kThreads * kPerThread;
    for (std::size_t k = 0; k < kK; ++k)
        EXPECT_EQ(worst[k].total_ns, n - k) << "rank " << k;
}

// End to end: an executor with a recorder configured records every
// completed query, and entries carry the snapshot version they answered
// from.
TEST(FlightRecorder, ExecutorRecordsCompletedQueries) {
    using SR = sparse::PlusTimes<double>;
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    par::run_world(2, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, 32, 32);
        stream::EngineConfig cfg;
        cfg.epoch_batch = 64;
        stream::EpochEngine<SR> engine(A, cfg);
        store.attach(engine, A, nullptr);
        if (comm.rank() == 0) {
            for (sparse::index_t v = 0; v + 1 < 8; ++v)
                ASSERT_TRUE(engine.queue().push(
                    {stream::OpKind::Add, {v, v + 1, 1.0}}));
        }
        engine.queue().close();
        engine.run();
    });

    FlightRecorder rec(8);
    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    ecfg.recorder = &rec;
    serve::QueryExecutor<double> ex(store, ecfg);
    for (sparse::index_t v = 0; v < 4; ++v)
        (void)ex.execute({QueryKind::Degree, v, 0, 1, ""});

    EXPECT_EQ(rec.offered(), 4u);
    const auto worst = rec.worst();
    ASSERT_EQ(worst.size(), 4u);
    std::set<std::uint64_t> qids;
    for (const auto& e : worst) {
        EXPECT_GT(e.qid, 0u);
        EXPECT_EQ(e.kind, QueryKind::Degree);
        EXPECT_EQ(e.status, QueryStatus::Ok);
        EXPECT_GT(e.snapshot_version, 0u);
        EXPECT_GE(e.total_ns, e.execute_ns);
        qids.insert(e.qid);
    }
    EXPECT_EQ(qids.size(), 4u) << "query ids must be distinct";
}

}  // namespace
