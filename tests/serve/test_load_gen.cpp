// The paced load generator: the fixed arrival schedule does not slip under
// a deliberately slow executor (the coordinated-omission proof), on-arrival
// latency includes the submit overhang, shed/expired always count as SLO
// violations, accounting is exact, and the stop flag halts the loop.
#include "serve/load_gen.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>

#include "serve/query_types.hpp"

namespace {

using namespace dsg;
using serve::LoadGenConfig;
using serve::LoadGenReport;
using serve::Query;
using serve::QueryKind;
using serve::QueryResult;
using serve::QueryStatus;

Query degree_query(std::uint64_t k) {
    return Query{QueryKind::Degree, static_cast<sparse::index_t>(k % 32), 0,
                 1, ""};
}

/// A fake executor whose submit() itself stalls — the pathological server
/// a coordinated-omission-prone generator would silently pace down to.
struct StallingExecutor {
    std::chrono::milliseconds stall{0};
    QueryStatus answer = QueryStatus::Ok;
    std::uint64_t latency_us = 0;
    std::atomic<std::uint64_t> submitted{0};

    std::future<QueryResult> submit(Query q) {
        (void)q;
        if (stall.count() > 0) std::this_thread::sleep_for(stall);
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::promise<QueryResult> p;
        QueryResult r;
        r.status = answer;
        r.latency_us = static_cast<double>(latency_us);
        p.set_value(r);
        return p.get_future();
    }
};

TEST(LoadGen, ScheduleDoesNotSlipUnderASlowExecutor) {
    // 1 ms arrival gap, but every submit stalls 2 ms: a re-anchoring
    // (coordinated-omission-prone) generator would report ~zero lateness
    // because it re-bases the schedule on its own slowed-down progress.
    // Ours keeps arrival k due at t0 + k ms, so by arrival k the submit is
    // at least k ms late and max_submit_lateness_ms must GROW with total.
    StallingExecutor ex;
    ex.stall = std::chrono::milliseconds(2);
    LoadGenConfig cfg;
    cfg.target_qps = 1000.0;  // 1 ms gap
    cfg.total = 40;
    cfg.slo_ms = 5.0;
    const LoadGenReport rep = serve::run_paced(ex, cfg, degree_query);

    EXPECT_EQ(rep.issued, 40u);
    EXPECT_EQ(ex.submitted.load(), 40u);
    // 40 arrivals x 2 ms stall vs a 40 ms schedule: the last arrivals run
    // tens of ms behind. Anything near zero would mean the schedule
    // re-anchored.
    EXPECT_GT(rep.max_submit_lateness_ms, 20.0);
    // The overhang lands in the on-arrival latency of the queries stuck
    // behind the stalls, so the median reflects the backlog even though
    // the executor itself answered "instantly".
    EXPECT_GT(rep.p50_ms, 5.0);
    EXPECT_GT(rep.slo_violations, rep.issued / 2);
}

TEST(LoadGen, AccountingIsExactAndPercentilesOrdered) {
    StallingExecutor ex;  // no stall: a fast, well-behaved server
    LoadGenConfig cfg;
    cfg.target_qps = 2000.0;
    cfg.total = 100;
    cfg.slo_ms = 100.0;  // generous: nothing should violate
    const LoadGenReport rep = serve::run_paced(ex, cfg, degree_query);

    EXPECT_EQ(rep.issued, 100u);
    EXPECT_EQ(rep.served + rep.shed + rep.expired, rep.issued);
    EXPECT_EQ(rep.served, 100u);
    EXPECT_EQ(rep.ok, 100u);
    EXPECT_LE(rep.p50_ms, rep.p99_ms);
    EXPECT_LE(rep.p99_ms, rep.p999_ms);
    EXPECT_LE(rep.p999_ms, rep.max_ms);
    EXPECT_GT(rep.duration_ms, 0.0);
    EXPECT_GT(rep.achieved_qps, 0.0);
    std::uint64_t by_class = 0;
    for (const auto v : rep.violations_by_class) by_class += v;
    EXPECT_EQ(by_class, rep.slo_violations);
}

TEST(LoadGen, ShedQueriesAlwaysViolateButSkipPercentiles) {
    StallingExecutor ex;
    ex.answer = QueryStatus::Shed;
    LoadGenConfig cfg;
    cfg.target_qps = 5000.0;
    cfg.total = 50;
    cfg.slo_ms = 1000.0;  // the SLO is generous; shed violates anyway
    const LoadGenReport rep = serve::run_paced(ex, cfg, degree_query);

    EXPECT_EQ(rep.shed, 50u);
    EXPECT_EQ(rep.served, 0u);
    EXPECT_EQ(rep.slo_violations, 50u);
    EXPECT_EQ(rep.violations_by_class[static_cast<std::size_t>(
                  QueryKind::Degree)],
              50u);
    // No served latencies: percentiles stay at the empty-set zero.
    EXPECT_EQ(rep.p50_ms, 0.0);
    EXPECT_EQ(rep.max_ms, 0.0);
}

TEST(LoadGen, ExecutorMeasuredLatencyCountsTowardTheSlo) {
    StallingExecutor ex;
    ex.latency_us = 50'000;  // the executor says every query took 50 ms
    LoadGenConfig cfg;
    cfg.target_qps = 5000.0;
    cfg.total = 20;
    cfg.slo_ms = 10.0;
    const LoadGenReport rep = serve::run_paced(ex, cfg, degree_query);
    EXPECT_EQ(rep.served, 20u);
    EXPECT_EQ(rep.slo_violations, 20u);
    EXPECT_GE(rep.p50_ms, 50.0);
}

TEST(LoadGen, StopFlagHaltsBetweenArrivals) {
    StallingExecutor ex;
    std::atomic<bool> stop{true};  // raised before the first arrival
    LoadGenConfig cfg;
    cfg.target_qps = 1000.0;
    cfg.total = 1000;
    cfg.stop = &stop;
    const LoadGenReport rep = serve::run_paced(ex, cfg, degree_query);
    EXPECT_EQ(rep.issued, 0u);
    EXPECT_EQ(ex.submitted.load(), 0u);
    EXPECT_EQ(rep.violation_rate(), 0.0);
}

}  // namespace
