// QueryExecutor tests: typed query evaluation, the cached fast path,
// admission control (bounded pending queue sheds with counted rejections),
// deadline expiry, and the background dispatcher under concurrent
// submitters (the TSan-exercised part).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "common/grid_shapes.hpp"
#include "analytics/maintainer.hpp"
#include "par/comm.hpp"
#include "serve/query_executor.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"

namespace {

using namespace dsg;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using sparse::index_t;
using sparse::Triple;
using serve::Query;
using serve::QueryKind;
using serve::QueryResult;
using serve::QueryStatus;
using stream::OpKind;
using dsg::test::GridCase;

constexpr int kRanks = 4;  // 2x2 grid
constexpr index_t kN = 64;

/// Publishes one snapshot of a known graph into `store`: a directed path
/// 0->1->...->15, a star 0->{32..39} with value j at (0, j), and the extra
/// edge 1->3 closing the triangle {1,2,3} for the analytics maintainer.
void populate(serve::SnapshotStore<double>& store, bool with_hub,
              const GridCase& gc = {2, 2}) {
    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        core::DistDynamicMatrix<double> A(grid, kN, kN);

        analytics::AnalyticsHub<double> hub;
        if (with_hub)
            hub.emplace<analytics::LiveTriangleMaintainer>(grid, kN);

        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.epoch_batch = 1 << 12;
        Engine engine(A, cfg);
        if (with_hub) hub.attach(engine);
        store.attach(engine, A, with_hub ? &hub : nullptr);

        if (comm.rank() == 0) {
            for (index_t v = 0; v + 1 < 16; ++v)
                ASSERT_TRUE(engine.queue().push({OpKind::Add, {v, v + 1, 1.0}}));
            for (index_t j = 32; j < 40; ++j)
                ASSERT_TRUE(engine.queue().push(
                    {OpKind::Add, {0, j, static_cast<double>(j)}}));
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {1, 3, 1.0}}));
        }
        engine.queue().close();
        engine.run();
    });
}

class QueryExecutorG : public ::testing::TestWithParam<GridCase> {};

TEST_P(QueryExecutorG, AnswersEachQueryKind) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    populate(store, /*with_hub=*/true, GetParam());

    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    serve::QueryExecutor<double> ex(store, ecfg);

    auto r = ex.execute({QueryKind::EdgeExists, 0, 1, 1, ""});
    EXPECT_EQ(r.status, QueryStatus::Ok);
    EXPECT_DOUBLE_EQ(r.value, 1.0);
    r = ex.execute({QueryKind::EdgeExists, 1, 0, 1, ""});  // directed: absent
    EXPECT_EQ(r.status, QueryStatus::Ok);
    EXPECT_DOUBLE_EQ(r.value, 0.0);

    // Row 0: edge to 1 plus the 8 star edges.
    r = ex.execute({QueryKind::Degree, 0, 0, 1, ""});
    EXPECT_DOUBLE_EQ(r.value, 9.0);
    // Row 1: edges to 2 and 3.
    r = ex.execute({QueryKind::Degree, 1, 0, 1, ""});
    EXPECT_DOUBLE_EQ(r.value, 2.0);

    // 1 hop from 0: {1, 32..39} = 9; 2 hops adds {2, 3} (via 1) = 11.
    r = ex.execute({QueryKind::KHop, 0, 0, 1, ""});
    EXPECT_DOUBLE_EQ(r.value, 9.0);
    r = ex.execute({QueryKind::KHop, 0, 0, 2, ""});
    EXPECT_DOUBLE_EQ(r.value, 11.0);

    r = ex.execute({QueryKind::AnalyticsRead, 0, 0, 1, "triangles"});
    EXPECT_EQ(r.status, QueryStatus::Ok);
    EXPECT_DOUBLE_EQ(r.value, 1.0);  // {1,2,3}
    r = ex.execute({QueryKind::AnalyticsRead, 0, 0, 1, "no-such-metric"});
    EXPECT_EQ(r.status, QueryStatus::NotFound);

    EXPECT_EQ(ex.stats(QueryKind::EdgeExists).ok, 2u);
    EXPECT_EQ(ex.stats(QueryKind::AnalyticsRead).not_found, 1u);
    EXPECT_GT(ex.stats(QueryKind::KHop).max_us, 0.0);
}

TEST(QueryExecutor, NoSnapshotBeforeFirstPublication) {
    serve::SnapshotStore<double> store;  // never attached, nothing published
    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    serve::QueryExecutor<double> ex(store, ecfg);
    const auto r = ex.execute({QueryKind::Degree, 0, 0, 1, ""});
    EXPECT_EQ(r.status, QueryStatus::NoSnapshot);
    EXPECT_EQ(ex.stats(QueryKind::Degree).no_snapshot, 1u);
}

TEST(QueryExecutor, CacheHitOnRepeatAndInvalidationByVersionKeying) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    serve::ResultCache cache;
    store.set_cache(&cache);
    populate(store, /*with_hub=*/false);

    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    ecfg.cache = &cache;
    serve::QueryExecutor<double> ex(store, ecfg);

    const Query q{QueryKind::KHop, 0, 0, 2, ""};
    auto r1 = ex.execute(q);
    EXPECT_FALSE(r1.cache_hit);
    auto r2 = ex.execute(q);
    EXPECT_TRUE(r2.cache_hit);
    EXPECT_DOUBLE_EQ(r2.value, r1.value);
    EXPECT_EQ(r2.version, r1.version);
    EXPECT_EQ(ex.stats(QueryKind::KHop).cache_hits, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().inserts, 1u);

    // A submit whose answer is cached completes inline as a hit.
    auto fut = ex.submit(q);
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(fut.get().cache_hit);

    // Different query fields fingerprint differently.
    auto r3 = ex.execute({QueryKind::KHop, 0, 0, 3, ""});
    EXPECT_FALSE(r3.cache_hit);
}

TEST(QueryExecutor, OverloadSheddingCountsRejections) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    populate(store, /*with_hub=*/false);

    serve::ExecutorConfig ecfg;
    ecfg.background = false;  // nothing drains until we say so
    ecfg.pending_capacity = 4;
    serve::QueryExecutor<double> ex(store, ecfg);

    std::vector<std::future<QueryResult>> futures;
    for (index_t k = 0; k < 10; ++k)
        futures.push_back(ex.submit({QueryKind::Degree, k % kN, 0, 1, ""}));

    // The first 4 were admitted; the remaining 6 shed immediately.
    EXPECT_EQ(ex.pending(), 4u);
    EXPECT_EQ(ex.shed_total(), 6u);
    std::size_t shed = 0, deferred = 0;
    for (auto& f : futures) {
        if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
            EXPECT_EQ(f.get().status, QueryStatus::Shed);
            ++shed;
        } else {
            ++deferred;
        }
    }
    EXPECT_EQ(shed, 6u);
    EXPECT_EQ(deferred, 4u);

    // Draining completes the admitted tail successfully.
    EXPECT_EQ(ex.drain(), 4u);
    std::size_t ok = 0;
    for (auto& f : futures)
        if (f.valid() &&
            f.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
            ++ok;
    EXPECT_EQ(ok, futures.size() - shed);
    EXPECT_EQ(ex.stats(QueryKind::Degree).ok, 4u);
    EXPECT_EQ(ex.stats(QueryKind::Degree).shed, 6u);
}

TEST(QueryExecutor, DeadlineExpiryNeverExecutes) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    populate(store, /*with_hub=*/false);

    serve::ExecutorConfig ecfg;
    ecfg.background = false;
    ecfg.deadline = std::chrono::milliseconds(1);
    serve::QueryExecutor<double> ex(store, ecfg);

    auto f1 = ex.submit({QueryKind::KHop, 0, 0, 2, ""});
    auto f2 = ex.submit({QueryKind::Degree, 0, 0, 1, ""});
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(ex.drain(), 2u);
    EXPECT_EQ(f1.get().status, QueryStatus::Expired);
    EXPECT_EQ(f2.get().status, QueryStatus::Expired);
    EXPECT_EQ(ex.stats(QueryKind::KHop).expired, 1u);
    EXPECT_EQ(ex.stats(QueryKind::Degree).expired, 1u);
}

// The TSan-exercised part: many submitter threads against the background
// dispatcher (with a shared pool and cache), every future fulfilled.
TEST(QueryExecutor, BackgroundDispatcherServesConcurrentSubmitters) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    serve::ResultCache cache;
    store.set_cache(&cache);
    populate(store, /*with_hub=*/false);

    par::ThreadPool pool(2);
    serve::ExecutorConfig ecfg;
    ecfg.pending_capacity = 256;
    ecfg.deadline = std::chrono::seconds(10);  // no flaky expiries
    ecfg.pool = &pool;
    ecfg.cache = &cache;
    serve::QueryExecutor<double> ex(store, ecfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::atomic<std::uint64_t> ok{0}, shed{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
        submitters.emplace_back([&, w] {
            for (int k = 0; k < kPerThread; ++k) {
                Query q;
                switch ((w + k) % 3) {
                    case 0:
                        q = {QueryKind::EdgeExists,
                             static_cast<index_t>(k % kN),
                             static_cast<index_t>((k + 1) % kN), 1, ""};
                        break;
                    case 1:
                        q = {QueryKind::Degree, static_cast<index_t>(k % kN),
                             0, 1, ""};
                        break;
                    default:
                        q = {QueryKind::KHop, static_cast<index_t>(k % 16), 0,
                             2, ""};
                        break;
                }
                auto r = ex.submit(std::move(q)).get();
                if (r.status == QueryStatus::Ok)
                    ok.fetch_add(1, std::memory_order_relaxed);
                else if (r.status == QueryStatus::Shed)
                    shed.fetch_add(1, std::memory_order_relaxed);
                else
                    ADD_FAILURE() << "unexpected status "
                                  << serve::query_status_name(r.status);
            }
        });
    }
    for (auto& t : submitters) t.join();
    ex.stop();

    EXPECT_EQ(ok.load() + shed.load(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_GT(ok.load(), 0u);
    EXPECT_GT(cache.stats().hits, 0u) << "repeated keys should hit";
}

TEST(QueryExecutor, FingerprintIsStableAndFieldSensitive) {
    const Query a{QueryKind::KHop, 3, 0, 2, ""};
    const Query b{QueryKind::KHop, 3, 0, 2, ""};
    EXPECT_EQ(serve::fingerprint(a), serve::fingerprint(b));
    EXPECT_NE(serve::fingerprint(a),
              serve::fingerprint({QueryKind::KHop, 3, 0, 3, ""}));
    EXPECT_NE(serve::fingerprint(a),
              serve::fingerprint({QueryKind::Degree, 3, 0, 2, ""}));
    EXPECT_NE(serve::fingerprint({QueryKind::AnalyticsRead, 0, 0, 1, "a"}),
              serve::fingerprint({QueryKind::AnalyticsRead, 0, 0, 1, "b"}));
}

INSTANTIATE_TEST_SUITE_P(GridShapes, QueryExecutorG,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
