// End-to-end request tracing acceptance: a deliberately induced checkpoint
// stall must produce (a) a watchdog event that reaches the events JSONL
// sidecar and (b) a flight-recorder entry whose trace flow event links the
// slow query to the publish span that produced its snapshot — the
// "slow query -> stalled epoch" join the observability ISSUE promises.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "par/comm.hpp"
#include "par/profiler.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/query_executor.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"

namespace {

using namespace dsg;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using serve::QueryKind;
using serve::QueryStatus;
using sparse::index_t;

std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return {};
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(RequestTracing, CheckpointStallLinksWatchdogEventAndSlowQuery) {
    if (obs::compiled_noop())
        GTEST_SKIP() << "instruments compiled to no-ops (DSG_OBS_NOOP)";
    par::Profiler::reset();
    par::Profiler::set_enabled(true);
    par::Profiler::set_trace_enabled(true);

    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    scfg.retain = 4;
    serve::SnapshotStore<double> store(scfg);
    serve::FlightRecorder recorder(8);
    serve::ExecutorConfig ecfg;
    ecfg.background = false;  // drained manually, AFTER the induced wait
    ecfg.deadline = std::chrono::seconds(60);
    ecfg.recorder = &recorder;
    serve::QueryExecutor<double> ex(store, ecfg);

    // The watchdog watches the live registry the engine publishes into. The
    // induced stall lands in stream_epoch_persist_ns (the checkpoint hook
    // bracket), so a max-field rule fires deterministically on the first
    // evaluation after the run.
    obs::EventLog log;
    obs::Rule stall;
    stall.name = "checkpoint-stall";
    stall.metric = "stream_epoch_persist_ns";
    stall.kind = obs::RuleKind::HistAbove;
    stall.field = obs::HistField::Max;
    stall.threshold = 10e6;  // 10 ms; the hook sleeps 30 ms
    stall.severity = obs::Severity::Critical;
    obs::Watchdog wd(obs::registry(), log, {stall});

    // One rank, tiny epochs: every epoch publishes a snapshot and then
    // stalls 30 ms in its checkpoint hook.
    par::run_world(1, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        core::DistDynamicMatrix<double> A(grid, 64, 64);
        stream::EngineConfig cfg;
        cfg.epoch_batch = 4;
        Engine engine(A, cfg);
        store.attach(engine, A, nullptr);
        engine.set_checkpoint_hook([](std::uint64_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        });
        if (comm.rank() == 0) {
            for (index_t v = 0; v + 1 < 12; ++v)
                ASSERT_TRUE(engine.queue().push(
                    {stream::OpKind::Add, {v, v + 1, 1.0}}));
        }
        engine.queue().close();
        engine.run();
    });
    ASSERT_GT(store.published(), 0u);

    // (a) The watchdog fires on the stalled persist histogram, and the
    // exporter's events sidecar carries the event as JSONL.
    EXPECT_GE(wd.evaluate_now(), 1u);
    EXPECT_TRUE(wd.firing("checkpoint-stall"));
    const std::string events_path =
        ::testing::TempDir() + "/dsg_request_tracing_events.jsonl";
    {
        obs::MetricsExporter::Config mcfg;
        mcfg.interval_ms = 60'000;
        mcfg.events_path = events_path;
        mcfg.events = &log;
        obs::MetricsExporter exporter(obs::registry(), std::move(mcfg));
        exporter.write_now();
        exporter.stop();
    }
    const std::string events_text = slurp(events_path);
    EXPECT_NE(events_text.find("\"rule\": \"checkpoint-stall\""),
              std::string::npos)
        << events_text;
    EXPECT_NE(events_text.find("\"severity\": \"critical\""),
              std::string::npos);
    EXPECT_NE(events_text.find("\"metric\": \"stream_epoch_persist_ns\""),
              std::string::npos);
    std::remove(events_path.c_str());

    // (b) A query submitted behind a deliberate drain delay becomes the
    // flight recorder's slowest entry, with the wait attributed to
    // admission.
    auto fut = ex.submit({QueryKind::Degree, 0, 0, 1, ""});
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_EQ(ex.drain(), 1u);
    const auto r = fut.get();
    ASSERT_EQ(r.status, QueryStatus::Ok);
    ASSERT_GT(r.qid, 0u);
    ASSERT_GT(r.version, 0u);

    const auto worst = recorder.worst();
    ASSERT_FALSE(worst.empty());
    const auto& slowest = worst.front();
    EXPECT_EQ(slowest.qid, r.qid);
    EXPECT_EQ(slowest.snapshot_version, r.version);
    EXPECT_GE(slowest.admission_wait_ns, 10'000'000u)
        << "the induced wait must be attributed to admission";
    EXPECT_EQ(slowest.admission_wait_ns + slowest.execute_ns,
              slowest.total_ns);

    par::Profiler::set_trace_enabled(false);
    par::Profiler::set_enabled(false);

    // The trace joins the two: the query span carries the qid, the publish
    // span carries the snapshot version, and the renderer emits an s/f
    // flow pair whose finish names exactly (version, qid) — Perfetto draws
    // the arrow from the stalled epoch's publish to the slow query.
    const std::string trace =
        obs::to_chrome_trace(par::Profiler::collect_trace());
    EXPECT_NE(trace.find("\"name\": \"Serve publish\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\": \"Serve admit\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos);
    char link[128];
    std::snprintf(link, sizeof link,
                  "\"args\": {\"snapshot_version\": %lld, \"qid\": %llu}",
                  static_cast<long long>(slowest.snapshot_version),
                  static_cast<unsigned long long>(slowest.qid));
    EXPECT_NE(trace.find(link), std::string::npos)
        << "no flow finish linking qid " << slowest.qid << " to version "
        << slowest.snapshot_version;
    char publish_args[64];
    std::snprintf(publish_args, sizeof publish_args,
                  "\"snapshot_version\": %lld",
                  static_cast<long long>(slowest.snapshot_version));
    EXPECT_NE(trace.find(publish_args), std::string::npos);
}

}  // namespace
