// ResultCache tests: (version, fingerprint) keying, invalidation by version
// advance / retention slide, capacity eviction, and concurrent access (the
// TSan-exercised part).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"

namespace {

using dsg::serve::CacheConfig;
using dsg::serve::ResultCache;

TEST(ResultCache, MissThenHitAfterInsert) {
    ResultCache cache;
    EXPECT_FALSE(cache.lookup(1, 42).has_value());
    cache.insert(1, 42, 3.5);
    const auto hit = cache.lookup(1, 42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(*hit, 3.5);
    EXPECT_EQ(cache.size(), 1u);

    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.inserts, 1u);
}

TEST(ResultCache, VersionAdvanceMissesWithoutAnyInvalidationWork) {
    ResultCache cache;
    cache.insert(1, 42, 3.5);
    // The same fingerprint under a newer snapshot version is a different
    // key — this is the "invalidation for free" property.
    EXPECT_FALSE(cache.lookup(2, 42).has_value());
    cache.insert(2, 42, 4.5);
    EXPECT_DOUBLE_EQ(*cache.lookup(2, 42), 4.5);
    EXPECT_DOUBLE_EQ(*cache.lookup(1, 42), 3.5);  // old version still served
    EXPECT_EQ(cache.versions(), 2u);
}

TEST(ResultCache, InvalidateBeforeDropsRetiredVersionsAndCounts) {
    ResultCache cache;
    for (std::uint64_t v = 1; v <= 4; ++v)
        for (std::uint64_t f = 0; f < 10; ++f)
            cache.insert(v, f, static_cast<double>(v));
    EXPECT_EQ(cache.size(), 40u);

    cache.invalidate_before(3);  // versions 1 and 2 slid out of retention
    EXPECT_EQ(cache.size(), 20u);
    EXPECT_EQ(cache.versions(), 2u);
    EXPECT_FALSE(cache.lookup(1, 0).has_value());
    EXPECT_FALSE(cache.lookup(2, 0).has_value());
    EXPECT_TRUE(cache.lookup(3, 0).has_value());
    EXPECT_EQ(cache.stats().invalidated, 20u);
}

TEST(ResultCache, CapacityEvictsOldestVersionShardFirst) {
    CacheConfig cfg;
    cfg.capacity = 8;
    ResultCache cache(cfg);
    for (std::uint64_t f = 0; f < 4; ++f) cache.insert(1, f, 1.0);
    for (std::uint64_t f = 0; f < 4; ++f) cache.insert(2, f, 2.0);
    EXPECT_EQ(cache.size(), 8u);

    cache.insert(3, 0, 3.0);  // over capacity: version 1's shard goes
    EXPECT_FALSE(cache.lookup(1, 0).has_value());
    EXPECT_TRUE(cache.lookup(2, 0).has_value());
    EXPECT_TRUE(cache.lookup(3, 0).has_value());
    EXPECT_EQ(cache.stats().evicted, 4u);
    EXPECT_LE(cache.size(), 8u);
}

TEST(ResultCache, InsertOrAssignUpdatesInPlaceWithoutGrowth) {
    ResultCache cache;
    cache.insert(5, 7, 1.0);
    cache.insert(5, 7, 2.0);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(*cache.lookup(5, 7), 2.0);
}

// The TSan-exercised part: readers, writers and the invalidation path all
// running concurrently must be race-free (the serving tier does exactly
// this: query threads look up and fill while rank 0 prunes at publish).
TEST(ResultCache, ConcurrentLookupInsertInvalidate) {
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 4'000;
    ResultCache cache;
    std::atomic<std::uint64_t> version{1};

    std::vector<std::thread> workers;
    workers.reserve(kThreads + 1);
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            for (int k = 0; k < kOpsPerThread; ++k) {
                const std::uint64_t v = version.load(std::memory_order_relaxed);
                const auto fp = static_cast<std::uint64_t>(w * kOpsPerThread + k) % 97;
                if (const auto hit = cache.lookup(v, fp)) {
                    // Cached values are per-(version, fp) deterministic.
                    EXPECT_DOUBLE_EQ(*hit, static_cast<double>(v + fp));
                } else {
                    cache.insert(v, fp, static_cast<double>(v + fp));
                }
            }
        });
    }
    workers.emplace_back([&] {
        // The publisher: advances the version and prunes a sliding window.
        for (int k = 0; k < 50; ++k) {
            const std::uint64_t v =
                version.fetch_add(1, std::memory_order_relaxed) + 1;
            cache.invalidate_before(v > 3 ? v - 3 : 0);
            std::this_thread::yield();
        }
    });
    for (auto& t : workers) t.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses,
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
