// SnapshotStore tests: publication cadence and retention, immutability of
// published versions, refcounted retirement under concurrent readers (the
// oldest version is freed only after its last reader drops, never while
// pinned), frozen analytics readouts, and query correctness against a
// brute-force reference. The concurrent tests are part of the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "analytics/graph_maintainers.hpp"
#include "common/grid_shapes.hpp"
#include "analytics/maintainer.hpp"
#include "par/comm.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

namespace {

using namespace dsg;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using sparse::index_t;
using sparse::Triple;
using stream::OpKind;
using dsg::test::GridCase;

constexpr int kRanks = 4;  // 2x2 grid

class SnapshotStoreG : public ::testing::TestWithParam<GridCase> {};

TEST(SnapshotStore, PublishCadenceAndRetention) {
    serve::StoreConfig scfg;
    scfg.publish_every = 2;
    scfg.retain = 2;
    serve::SnapshotStore<double> store(scfg);

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 32;
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.epoch_batch = 1;  // one buffered op triggers an epoch
        Engine engine(A, cfg);
        store.attach(engine, A);  // publishes version 0

        const auto r = static_cast<index_t>(comm.rank());
        for (index_t e = 1; e <= 5; ++e) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {r, e, 1.0}}));
            engine.pump();  // collective; applies exactly this epoch
        }
        engine.queue().close();
        engine.run();  // drains the (empty) tail collectively
    });

    // Published at versions 0 (attach), 2 and 4; retention keeps {2, 4}.
    EXPECT_EQ(store.published(), 3u);
    EXPECT_EQ(store.retained(), 2u);
    ASSERT_TRUE(store.current_version().has_value());
    EXPECT_EQ(*store.current_version(), 4u);
    EXPECT_EQ(*store.oldest_version(), 2u);
    EXPECT_EQ(store.get(0), nullptr);  // retired
    ASSERT_NE(store.get(2), nullptr);
    EXPECT_EQ(store.get(2)->version(), 2u);
    EXPECT_EQ(store.live_snapshots(), 2);
}

TEST_P(SnapshotStoreG, PublishedVersionsAreImmutablePerEpochImages) {
    const GridCase gc = GetParam();
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    scfg.retain = 8;
    serve::SnapshotStore<double> store(scfg);

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        const index_t n = 32;
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.epoch_batch = 1;
        Engine engine(A, cfg);
        store.attach(engine, A);

        const auto r = static_cast<index_t>(comm.rank());
        for (index_t e = 1; e <= 3; ++e) {
            ASSERT_TRUE(engine.queue().push({OpKind::Add, {r, 10 + e, 1.0}}));
            engine.pump();
        }
        engine.queue().close();
        engine.run();
    });

    // Version v froze exactly the first v edges of every rank — later
    // epochs must not leak into earlier published snapshots.
    for (std::uint64_t v = 1; v <= 3; ++v) {
        const auto snap = store.get(v);
        ASSERT_NE(snap, nullptr);
        EXPECT_EQ(snap->version(), v);
        EXPECT_EQ(snap->nnz(), static_cast<std::size_t>(gc.p()) * v);
        for (index_t rank = 0; rank < gc.p(); ++rank)
            for (index_t e = 1; e <= 3; ++e)
                EXPECT_EQ(snap->edge_exists(rank, 10 + e),
                          static_cast<std::uint64_t>(e) <= v)
                    << "version " << v << " rank " << rank << " edge " << e;
    }
    // The attach-time snapshot of the empty matrix is still pinnable.
    ASSERT_NE(store.get(0), nullptr);
    EXPECT_EQ(store.get(0)->nnz(), 0u);
}

// The lifecycle acceptance test: a pinned snapshot survives its retirement
// from the store — it is freed only when the last reader drops it — while
// concurrent readers hammer current() and queries against live publishing.
TEST(SnapshotStore, RefcountedRetirementUnderConcurrentReaders) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    scfg.retain = 2;
    serve::SnapshotStore<double> store(scfg);
    std::shared_ptr<const serve::Snapshot<double>> pinned;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 256;
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        // A small ring bounds how much one epoch can drain, so the 2000
        // writes are guaranteed to span many applied epochs (and therefore
        // many publications) no matter how the host schedules the threads.
        cfg.queue_capacity = 256;
        cfg.epoch_batch = 128;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        store.attach(engine, A);

        if (comm.rank() == 0) {
            pinned = store.current();  // pin version 0 for the whole run
            ASSERT_NE(pinned, nullptr);
            ASSERT_EQ(pinned->version(), 0u);
        }
        comm.barrier();

        // One reader thread per rank hammers the store while epochs apply;
        // snapshots are grabbed and dropped every iteration.
        std::atomic<bool> done{false};
        std::thread reader([&] {
            std::uint64_t polls = 0;
            while (!done.load(std::memory_order_acquire)) {
                auto snap = store.current();
                if (snap) {
                    const auto i = static_cast<index_t>(polls % 256);
                    (void)snap->degree(i);
                    (void)snap->edge_exists(i, (i * 7) % 256);
                    (void)snap->k_hop_count(i, 2);
                }
                ++polls;
            }
        });

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = n;
        wl.writes = 2'000;
        wl.seed = 400 + static_cast<std::uint64_t>(comm.rank());
        engine.queue().register_producer();
        std::thread producer([&] {
            stream::drive_producer(engine,
                                   stream::WorkloadProducer(wl, comm.rank()),
                                   [](index_t, index_t) {});
        });
        engine.run();
        producer.join();
        done.store(true, std::memory_order_release);
        reader.join();

        comm.barrier();  // all readers joined before asserting population
        if (comm.rank() == 0) {
            EXPECT_GE(store.published(), 3u) << "need retirement to happen";
            // Version 0 was retired from the store long ago, but the pin
            // keeps exactly one extra snapshot alive.
            EXPECT_EQ(store.get(0), nullptr);
            EXPECT_EQ(store.live_snapshots(),
                      static_cast<std::int64_t>(store.retained()) + 1);
            // The pinned snapshot still answers as the empty version 0.
            EXPECT_EQ(pinned->version(), 0u);
            EXPECT_EQ(pinned->nnz(), 0u);
            EXPECT_FALSE(pinned->edge_exists(0, 1));
            pinned.reset();  // last reader drops: now it is freed
            EXPECT_EQ(store.live_snapshots(),
                      static_cast<std::int64_t>(store.retained()));
        }
        comm.barrier();
    });
}

TEST(SnapshotStore, FrozenAnalyticsReadoutsMatchTheHubAtPublishTime) {
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    scfg.retain = 4;
    serve::SnapshotStore<double> store(scfg);
    double final_triangles = -1;

    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 64;
        core::DistDynamicMatrix<double> A(grid, n, n);

        analytics::AnalyticsHub<double> hub;
        auto& triangles =
            hub.emplace<analytics::LiveTriangleMaintainer>(grid, n);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 1 << 12;
        Engine engine(A, cfg);
        hub.attach(engine);
        store.attach(engine, A, &hub);

        if (comm.rank() == 0) {
            // A triangle {1,2,3} plus a tail edge.
            for (const auto& t : std::vector<Triple<double>>{
                     {1, 2, 1.0}, {2, 3, 1.0}, {1, 3, 1.0}, {3, 4, 1.0}})
                ASSERT_TRUE(engine.queue().push({OpKind::Add, t}));
        }
        engine.queue().close();
        engine.run();
        if (comm.rank() == 0) final_triangles = triangles.snapshot();
        comm.barrier();
    });

    ASSERT_GE(final_triangles, 0.0);
    EXPECT_DOUBLE_EQ(final_triangles, 1.0);
    const auto snap = store.current();
    ASSERT_NE(snap, nullptr);
    ASSERT_EQ(snap->readouts().size(), 1u);
    const auto frozen = snap->analytics("triangles");
    ASSERT_TRUE(frozen.has_value());
    EXPECT_DOUBLE_EQ(*frozen, final_triangles);
    EXPECT_FALSE(snap->analytics("no-such-metric").has_value());
}

TEST_P(SnapshotStoreG, QueriesMatchBruteForceReference) {
    const GridCase gc = GetParam();
    serve::StoreConfig scfg;
    scfg.publish_every = 1;
    serve::SnapshotStore<double> store(scfg);
    std::vector<Triple<double>> reference;

    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        const index_t n = 48;
        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.epoch_batch = 256;
        Engine engine(A, cfg);
        store.attach(engine, A);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = n;
        wl.writes = 600;
        wl.seed = 123 + static_cast<std::uint64_t>(comm.rank());
        engine.queue().register_producer();
        std::thread producer([&] {
            stream::drive_producer(engine,
                                   stream::WorkloadProducer(wl, comm.rank()),
                                   [](index_t, index_t) {});
        });
        engine.run();
        producer.join();

        auto all = A.gather_global();  // collective
        if (comm.rank() == 0) reference = std::move(all);
        comm.barrier();
    });

    const auto snap = store.current();
    ASSERT_NE(snap, nullptr);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(snap->nnz(), reference.size());

    // Adjacency reference: value map + per-row neighbor sets.
    std::map<std::pair<index_t, index_t>, double> values;
    std::map<index_t, std::set<index_t>> adj;
    for (const auto& t : reference) {
        values[{t.row, t.col}] = t.value;
        adj[t.row].insert(t.col);
    }

    for (const auto& [coord, value] : values) {
        EXPECT_TRUE(snap->edge_exists(coord.first, coord.second));
        const auto v = snap->value_at(coord.first, coord.second);
        ASSERT_TRUE(v.has_value());
        EXPECT_DOUBLE_EQ(*v, value);
    }
    for (index_t i = 0; i < 48; ++i) {
        const auto it = adj.find(i);
        EXPECT_EQ(snap->degree(i), it == adj.end() ? 0u : it->second.size());
    }
    EXPECT_FALSE(snap->edge_exists(-1, 0));
    EXPECT_FALSE(snap->edge_exists(0, 48));

    // k-hop vs a BFS reference from several sources.
    for (const index_t src : {index_t{0}, index_t{7}, index_t{23}}) {
        for (const int hops : {1, 2, 3}) {
            std::set<index_t> visited{src};
            std::vector<index_t> frontier{src};
            for (int h = 0; h < hops; ++h) {
                std::vector<index_t> next;
                for (const auto u : frontier) {
                    const auto it = adj.find(u);
                    if (it == adj.end()) continue;
                    for (const auto v : it->second)
                        if (visited.insert(v).second) next.push_back(v);
                }
                frontier.swap(next);
            }
            EXPECT_EQ(snap->k_hop_count(src, hops), visited.size() - 1)
                << "src " << src << " hops " << hops;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(GridShapes, SnapshotStoreG,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

}  // namespace
