#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "sparse/coo.hpp"

namespace {

using dsg::sparse::counting_sort;
using dsg::sparse::IndexPermutation;
using dsg::sparse::index_t;
using dsg::sparse::MinPlus;
using dsg::sparse::PlusTimes;
using dsg::sparse::Triple;

TEST(CountingSort, GroupsByKeyAndIsStable) {
    std::vector<Triple<int>> ts{
        {3, 0, 1}, {1, 0, 2}, {3, 1, 3}, {0, 0, 4}, {1, 1, 5},
    };
    auto offsets = counting_sort(ts, 4, [](const Triple<int>& t) {
        return static_cast<std::size_t>(t.row);
    });
    ASSERT_EQ(offsets.size(), 5u);
    EXPECT_EQ(offsets[0], 0u);
    EXPECT_EQ(offsets[4], 5u);
    // Bucket contents grouped by row, original order within a bucket.
    EXPECT_EQ(ts[0], (Triple<int>{0, 0, 4}));
    EXPECT_EQ(ts[1], (Triple<int>{1, 0, 2}));
    EXPECT_EQ(ts[2], (Triple<int>{1, 1, 5}));
    EXPECT_EQ(ts[3], (Triple<int>{3, 0, 1}));
    EXPECT_EQ(ts[4], (Triple<int>{3, 1, 3}));
    // offsets[2] == offsets[3]: bucket 2 is empty.
    EXPECT_EQ(offsets[2], 3u);
    EXPECT_EQ(offsets[3], 3u);
}

TEST(CountingSort, EmptyInput) {
    std::vector<Triple<int>> ts;
    auto offsets = counting_sort(ts, 3, [](const Triple<int>&) { return 0u; });
    EXPECT_EQ(offsets, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(CountingSort, RandomizedPreservesMultiset) {
    std::mt19937_64 rng(7);
    std::vector<Triple<int>> ts;
    for (int i = 0; i < 5'000; ++i)
        ts.push_back({static_cast<index_t>(rng() % 37),
                      static_cast<index_t>(rng() % 100),
                      static_cast<int>(rng() % 1000)});
    auto ref = ts;
    auto offsets = counting_sort(ts, 37, [](const Triple<int>& t) {
        return static_cast<std::size_t>(t.row);
    });
    // Every bucket b holds exactly the rows equal to b.
    for (std::size_t b = 0; b < 37; ++b)
        for (std::size_t i = offsets[b]; i < offsets[b + 1]; ++i)
            EXPECT_EQ(ts[i].row, static_cast<index_t>(b));
    auto key = [](const Triple<int>& t) {
        return std::tuple(t.row, t.col, t.value);
    };
    std::sort(ts.begin(), ts.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(ref.begin(), ref.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    EXPECT_EQ(ts, ref);
}

TEST(CombineDuplicates, PlusTimesSumsValues) {
    std::vector<Triple<double>> ts{
        {0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}, {0, 1, 5.0},
    };
    dsg::sparse::combine_duplicates<PlusTimes<double>>(ts);
    ASSERT_EQ(ts.size(), 2u);
    EXPECT_EQ(ts[0], (Triple<double>{0, 1, 10.0}));
    EXPECT_EQ(ts[1], (Triple<double>{1, 0, 1.0}));
}

TEST(CombineDuplicates, MinPlusKeepsMinimum) {
    std::vector<Triple<double>> ts{
        {2, 2, 9.0}, {2, 2, 4.0}, {2, 2, 7.0},
    };
    dsg::sparse::combine_duplicates<MinPlus<double>>(ts);
    ASSERT_EQ(ts.size(), 1u);
    EXPECT_EQ(ts[0].value, 4.0);
}

TEST(IndexPermutation, IsABijection) {
    IndexPermutation perm(1000, 42);
    std::vector<bool> hit(1000, false);
    for (index_t i = 0; i < 1000; ++i) {
        const index_t img = perm(i);
        ASSERT_GE(img, 0);
        ASSERT_LT(img, 1000);
        EXPECT_FALSE(hit[static_cast<std::size_t>(img)]);
        hit[static_cast<std::size_t>(img)] = true;
    }
}

TEST(IndexPermutation, DeterministicInSeed) {
    IndexPermutation a(256, 9);
    IndexPermutation b(256, 9);
    IndexPermutation c(256, 10);
    bool all_equal_c = true;
    for (index_t i = 0; i < 256; ++i) {
        EXPECT_EQ(a(i), b(i));
        all_equal_c = all_equal_c && a(i) == c(i);
    }
    EXPECT_FALSE(all_equal_c);
}

TEST(IndexPermutation, ApplyRemapsBothCoordinates) {
    IndexPermutation perm(10, 3);
    std::vector<Triple<int>> ts{{1, 2, 7}, {0, 9, 8}};
    perm.apply(ts);
    EXPECT_EQ(ts[0].row, perm(1));
    EXPECT_EQ(ts[0].col, perm(2));
    EXPECT_EQ(ts[1].row, perm(0));
    EXPECT_EQ(ts[1].col, perm(9));
    EXPECT_EQ(ts[0].value, 7);
}

}  // namespace
