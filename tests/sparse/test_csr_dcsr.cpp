#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dcsr_ops.hpp"

namespace {

using dsg::sparse::Csr;
using dsg::sparse::Dcsr;
using dsg::sparse::DcsrRowLookup;
using dsg::sparse::index_t;
using dsg::sparse::Triple;

template <typename T>
std::map<std::pair<index_t, index_t>, T> as_map(
    const std::vector<Triple<T>>& ts) {
    std::map<std::pair<index_t, index_t>, T> m;
    for (const auto& t : ts) m[{t.row, t.col}] = t.value;
    return m;
}

TEST(Csr, FromTriplesRoundTrip) {
    std::vector<Triple<double>> ts{
        {0, 1, 1.5}, {2, 0, 2.5}, {0, 3, 3.5}, {2, 2, 4.5},
    };
    auto m = Csr<double>::from_triples(3, 4, ts);
    EXPECT_EQ(m.nrows(), 3);
    EXPECT_EQ(m.ncols(), 4);
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_EQ(as_map(m.to_triples()), as_map(ts));
    EXPECT_EQ(m.row_cols(1).size(), 0u);
    EXPECT_EQ(m.row_cols(0).size(), 2u);
}

TEST(Csr, EmptyMatrix) {
    auto m = Csr<int>::from_triples(5, 5, {});
    EXPECT_EQ(m.nnz(), 0u);
    for (index_t i = 0; i < 5; ++i) EXPECT_TRUE(m.row_cols(i).empty());
}

TEST(Csr, TransposeIsInvolution) {
    std::mt19937_64 rng(5);
    std::vector<Triple<double>> ts;
    for (int i = 0; i < 300; ++i)
        ts.push_back({static_cast<index_t>(rng() % 20),
                      static_cast<index_t>(rng() % 31),
                      static_cast<double>(rng() % 97)});
    dsg::sparse::combine_duplicates<dsg::sparse::PlusTimes<double>>(ts);
    auto m = Csr<double>::from_triples(20, 31, ts);
    auto t = m.transpose();
    EXPECT_EQ(t.nrows(), 31);
    EXPECT_EQ(t.ncols(), 20);
    auto tt = t.transpose();
    EXPECT_EQ(as_map(tt.to_triples()), as_map(m.to_triples()));
}

TEST(Dcsr, FromRowGroupedSkipsEmptyRows) {
    std::vector<Triple<double>> ts{
        {1, 0, 1.0}, {1, 5, 2.0}, {7, 3, 3.0},
    };
    auto m = Dcsr<double>::from_row_grouped(10, 6, ts);
    EXPECT_EQ(m.row_count(), 2u);
    EXPECT_EQ(m.row_id(0), 1);
    EXPECT_EQ(m.row_id(1), 7);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_EQ(as_map(m.to_triples()), as_map(ts));
}

TEST(Dcsr, BuilderInterfaceDropsEmptyRows) {
    Dcsr<int> m(4, 4);
    m.begin_row(0);
    m.push_entry(1, 10);
    m.end_row();
    m.begin_row(2);
    m.end_row();  // nothing pushed: row vanishes
    m.begin_row(3);
    m.push_entry(0, 30);
    m.end_row();
    EXPECT_EQ(m.row_count(), 2u);
    EXPECT_EQ(m.row_id(1), 3);
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(Dcsr, SerializeRoundTrip) {
    std::vector<Triple<double>> ts{
        {0, 0, -1.0}, {5, 2, 2.25}, {5, 4, 0.0}, {9, 9, 7.0},
    };
    auto m = Dcsr<double>::from_row_grouped(10, 10, ts);
    auto buf = m.serialize();
    auto back = Dcsr<double>::deserialize(buf);
    EXPECT_EQ(back.nrows(), 10);
    EXPECT_EQ(back.ncols(), 10);
    EXPECT_EQ(as_map(back.to_triples()), as_map(ts));
}

TEST(Dcsr, SerializeEmpty) {
    Dcsr<double> m(100, 100);
    auto back = Dcsr<double>::deserialize(m.serialize());
    EXPECT_EQ(back.nnz(), 0u);
    EXPECT_EQ(back.nrows(), 100);
}

TEST(Dcsr, WireSizeIsIndependentOfDimension) {
    std::vector<Triple<double>> ts{{5, 5, 1.0}};
    auto small = Dcsr<double>::from_row_grouped(10, 10, ts);
    auto huge = Dcsr<double>::from_row_grouped(1'000'000, 1'000'000, ts);
    EXPECT_EQ(small.wire_size(), huge.wire_size());
    EXPECT_EQ(small.serialize().size(), small.wire_size());
}

TEST(Dcsr, AppendRowsConcatenates) {
    auto a = Dcsr<int>::from_row_grouped(10, 3, std::vector<Triple<int>>{
                                                    {0, 0, 1}, {2, 1, 2}});
    auto b = Dcsr<int>::from_row_grouped(10, 3, std::vector<Triple<int>>{
                                                    {5, 2, 3}, {9, 0, 4}});
    a.append_rows(b);
    EXPECT_EQ(a.row_count(), 4u);
    EXPECT_EQ(a.nnz(), 4u);
    EXPECT_EQ(a.row_id(2), 5);
    auto ts = a.to_triples();
    EXPECT_EQ(ts.back(), (Triple<int>{9, 0, 4}));
}

TEST(DcsrRowLookup, FindsOnlyNonEmptyRows) {
    std::vector<Triple<double>> ts{{3, 0, 1.0}, {8, 1, 2.0}};
    auto m = Dcsr<double>::from_row_grouped(20, 2, ts);
    DcsrRowLookup<double> lut(m);
    EXPECT_EQ(lut.position(3), 0u);
    EXPECT_EQ(lut.position(8), 1u);
    EXPECT_EQ(lut.position(0), DcsrRowLookup<double>::npos);
    EXPECT_EQ(lut.position(19), DcsrRowLookup<double>::npos);
}

TEST(DcsrOps, AddDisjointRows) {
    auto a = Dcsr<double>::from_row_grouped(
        6, 6, std::vector<Triple<double>>{{0, 0, 1.0}});
    auto b = Dcsr<double>::from_row_grouped(
        6, 6, std::vector<Triple<double>>{{3, 3, 2.0}});
    auto c = dsg::sparse::dcsr_add(a, b, [](double x, double y) { return x + y; });
    EXPECT_EQ(c.nnz(), 2u);
    EXPECT_EQ(as_map(c.to_triples()),
              (as_map<double>({{0, 0, 1.0}, {3, 3, 2.0}})));
}

TEST(DcsrOps, AddSharedRowCombinesOverlap) {
    auto a = Dcsr<double>::from_row_grouped(
        4, 4, std::vector<Triple<double>>{{1, 0, 1.0}, {1, 2, 5.0}});
    auto b = Dcsr<double>::from_row_grouped(
        4, 4, std::vector<Triple<double>>{{1, 2, 7.0}, {1, 3, 9.0}});
    auto c = dsg::sparse::dcsr_add(a, b, [](double x, double y) { return x + y; });
    auto m = as_map(c.to_triples());
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ((m[{1, 0}]), 1.0);
    EXPECT_EQ((m[{1, 2}]), 12.0);
    EXPECT_EQ((m[{1, 3}]), 9.0);
}

TEST(DcsrOps, AddRandomizedMatchesMapModel) {
    std::mt19937_64 rng(11);
    auto gen = [&](int n) {
        std::vector<Triple<double>> ts;
        for (int i = 0; i < n; ++i)
            ts.push_back({static_cast<index_t>(rng() % 30),
                          static_cast<index_t>(rng() % 30),
                          static_cast<double>(1 + rng() % 9)});
        dsg::sparse::combine_duplicates<dsg::sparse::PlusTimes<double>>(ts);
        return ts;
    };
    for (int trial = 0; trial < 20; ++trial) {
        auto ta = gen(static_cast<int>(rng() % 60));
        auto tb = gen(static_cast<int>(rng() % 60));
        auto a = Dcsr<double>::from_row_grouped(30, 30, ta);
        auto b = Dcsr<double>::from_row_grouped(30, 30, tb);
        auto c = dsg::sparse::dcsr_add(
            a, b, [](double x, double y) { return x + y; });
        auto expect = as_map(ta);
        for (const auto& t : tb) expect[{t.row, t.col}] += t.value;
        EXPECT_EQ(as_map(c.to_triples()), expect) << "trial " << trial;
    }
}

TEST(DcsrOps, TransposeRoundTrip) {
    std::mt19937_64 rng(13);
    std::vector<Triple<double>> ts;
    for (int i = 0; i < 100; ++i)
        ts.push_back({static_cast<index_t>(rng() % 15),
                      static_cast<index_t>(rng() % 25),
                      static_cast<double>(rng() % 50)});
    dsg::sparse::combine_duplicates<dsg::sparse::PlusTimes<double>>(ts);
    auto m = Dcsr<double>::from_row_grouped(15, 25, ts);
    auto t = dsg::sparse::dcsr_transpose(m);
    EXPECT_EQ(t.nrows(), 25);
    EXPECT_EQ(t.ncols(), 15);
    auto tt = dsg::sparse::dcsr_transpose(t);
    EXPECT_EQ(as_map(tt.to_triples()), as_map(m.to_triples()));
}

TEST(DcsrOps, PatternContainsExactlyTheCoordinates) {
    std::vector<Triple<int>> ts{{0, 1, 5}, {2, 2, 0}};
    auto m = Dcsr<int>::from_row_grouped(3, 3, ts);
    auto set = dsg::sparse::dcsr_pattern(m);
    EXPECT_TRUE(set.contains(0, 1));
    EXPECT_TRUE(set.contains(2, 2));  // numerical zero is structurally present
    EXPECT_FALSE(set.contains(1, 1));
    EXPECT_EQ(set.size(), 2u);
}

}  // namespace
