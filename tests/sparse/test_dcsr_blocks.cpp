// Unit tests of the DCSR block-slicing helpers (dcsr_row_block,
// dcsr_col_block) and the disjoint-triples assembler
// (dcsr_from_unique_triples). These carry the rectangular-grid SUMMA slab
// slicing and the refinement-segment partitioning, so they are pinned down
// here against brute-force reference slices.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "sparse/dcsr.hpp"
#include "sparse/dcsr_ops.hpp"

namespace {

using dsg::sparse::Dcsr;
using dsg::sparse::dcsr_col_block;
using dsg::sparse::dcsr_from_unique_triples;
using dsg::sparse::dcsr_row_block;
using dsg::sparse::index_t;
using dsg::sparse::Triple;

template <typename T>
std::map<std::pair<index_t, index_t>, T> as_map(
    const std::vector<Triple<T>>& ts) {
    std::map<std::pair<index_t, index_t>, T> m;
    for (const auto& t : ts) m[{t.row, t.col}] = t.value;
    return m;
}

std::vector<Triple<double>> random_unique_triples(std::uint64_t seed,
                                                  index_t nrows, index_t ncols,
                                                  int count) {
    std::mt19937_64 rng(seed);
    std::map<std::pair<index_t, index_t>, double> seen;
    while (static_cast<int>(seen.size()) < count) {
        const auto i = static_cast<index_t>(
            rng() % static_cast<std::uint64_t>(nrows));
        const auto j = static_cast<index_t>(
            rng() % static_cast<std::uint64_t>(ncols));
        seen[{i, j}] = static_cast<double>(rng() % 1000) + 0.5;
    }
    std::vector<Triple<double>> out;
    out.reserve(seen.size());
    for (const auto& [key, v] : seen) out.push_back({key.first, key.second, v});
    return out;
}

Dcsr<double> random_dcsr(std::uint64_t seed, index_t nrows, index_t ncols,
                         int count) {
    return dcsr_from_unique_triples(nrows, ncols,
                                    random_unique_triples(seed, nrows, ncols,
                                                          count));
}

TEST(DcsrBlocks, RowBlockMatchesBruteForceSlice) {
    const auto m = random_dcsr(1, 23, 17, 120);
    for (const auto& [lo, hi] : std::vector<std::pair<index_t, index_t>>{
             {0, 23}, {0, 7}, {7, 15}, {15, 23}, {4, 4}, {22, 23}}) {
        const auto block = dcsr_row_block(m, lo, hi);
        EXPECT_EQ(block.nrows(), hi - lo);
        EXPECT_EQ(block.ncols(), m.ncols());
        std::map<std::pair<index_t, index_t>, double> expect;
        for (const auto& t : m.to_triples())
            if (t.row >= lo && t.row < hi)
                expect[{t.row - lo, t.col}] = t.value;
        EXPECT_EQ(as_map(block.to_triples()), expect)
            << "rows [" << lo << ", " << hi << ")";
    }
}

TEST(DcsrBlocks, ColBlockMatchesBruteForceSlice) {
    const auto m = random_dcsr(2, 17, 29, 130);
    for (const auto& [lo, hi] : std::vector<std::pair<index_t, index_t>>{
             {0, 29}, {0, 10}, {10, 20}, {20, 29}, {5, 5}, {28, 29}}) {
        const auto block = dcsr_col_block(m, lo, hi);
        EXPECT_EQ(block.nrows(), m.nrows());
        EXPECT_EQ(block.ncols(), hi - lo);
        std::map<std::pair<index_t, index_t>, double> expect;
        for (const auto& t : m.to_triples())
            if (t.col >= lo && t.col < hi)
                expect[{t.row, t.col - lo}] = t.value;
        EXPECT_EQ(as_map(block.to_triples()), expect)
            << "cols [" << lo << ", " << hi << ")";
    }
}

TEST(DcsrBlocks, ColBlockDropsEmptiedRows) {
    // Rows whose every entry falls outside the slice must not appear in the
    // compressed row list (double compression preserved).
    const Dcsr<double> m = dcsr_from_unique_triples<double>(
        4, 10, {{0, 1, 1.0}, {1, 8, 2.0}, {2, 2, 3.0}, {2, 9, 4.0}});
    const auto block = dcsr_col_block(m, 0, 5);
    EXPECT_EQ(block.row_count(), 2u);  // rows 0 and 2 survive, row 1 dropped
    EXPECT_EQ(block.nnz(), 2u);
    EXPECT_EQ(block.row_id(0), 0);
    EXPECT_EQ(block.row_id(1), 2);
}

TEST(DcsrBlocks, RowBlocksPartitionTheMatrix) {
    // An uneven partition (the shape a rectangular grid produces) must cover
    // every entry exactly once.
    const auto m = random_dcsr(3, 19, 13, 90);
    const std::vector<index_t> cuts{0, 7, 13, 19};  // blocks of 7, 6, 6 rows
    std::map<std::pair<index_t, index_t>, double> reassembled;
    for (std::size_t b = 0; b + 1 < cuts.size(); ++b) {
        const auto block = dcsr_row_block(m, cuts[b], cuts[b + 1]);
        for (const auto& t : block.to_triples())
            reassembled[{t.row + cuts[b], t.col}] = t.value;
    }
    EXPECT_EQ(reassembled, as_map(m.to_triples()));
}

TEST(DcsrBlocks, FromUniqueTriplesSortsAnyInputOrder) {
    auto triples = random_unique_triples(4, 21, 11, 70);
    const auto expect = as_map(triples);
    std::mt19937_64 rng(5);
    std::shuffle(triples.begin(), triples.end(), rng);
    const auto m = dcsr_from_unique_triples(21, 11, std::move(triples));
    EXPECT_EQ(m.nrows(), 21);
    EXPECT_EQ(m.ncols(), 11);
    EXPECT_EQ(m.nnz(), 70u);
    EXPECT_EQ(as_map(m.to_triples()), expect);
    // Row ids ascending, columns sorted within each row.
    for (std::size_t r = 0; r < m.row_count(); ++r) {
        if (r > 0) {
            EXPECT_LT(m.row_id(r - 1), m.row_id(r));
        }
        auto cols = m.row_cols(r);
        EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
    }
}

TEST(DcsrBlocks, EmptyInputsAndEmptySlices) {
    const auto empty = dcsr_from_unique_triples<double>(6, 6, {});
    EXPECT_EQ(empty.nnz(), 0u);
    EXPECT_EQ(dcsr_row_block(empty, 2, 5).nnz(), 0u);
    EXPECT_EQ(dcsr_col_block(empty, 0, 6).nnz(), 0u);

    const auto m = random_dcsr(6, 8, 8, 20);
    EXPECT_EQ(dcsr_row_block(m, 3, 3).nnz(), 0u);
    EXPECT_EQ(dcsr_col_block(m, 3, 3).nnz(), 0u);
}

}  // namespace
