#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sparse/dynamic_matrix.hpp"

namespace {

using dsg::sparse::DynamicMatrix;
using dsg::sparse::index_t;

TEST(DynamicMatrix, InsertFindBasics) {
    DynamicMatrix<double> m(4, 4);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_TRUE(m.insert_or_assign(1, 2, 5.0));
    EXPECT_FALSE(m.insert_or_assign(1, 2, 6.0));  // overwrite, not new
    EXPECT_EQ(m.nnz(), 1u);
    ASSERT_NE(m.find(1, 2), nullptr);
    EXPECT_EQ(*m.find(1, 2), 6.0);
    EXPECT_EQ(m.find(2, 1), nullptr);
}

TEST(DynamicMatrix, StructuralVsNumericalZero) {
    DynamicMatrix<double> m(2, 2);
    m.insert_or_assign(0, 0, 0.0);  // numerically zero, structurally present
    EXPECT_TRUE(m.contains(0, 0));
    EXPECT_EQ(m.nnz(), 1u);
}

TEST(DynamicMatrix, InsertOrAddCombines) {
    DynamicMatrix<double> m(2, 2);
    auto plus = [](double a, double b) { return a + b; };
    EXPECT_TRUE(m.insert_or_add(0, 1, 2.0, plus));
    EXPECT_FALSE(m.insert_or_add(0, 1, 3.0, plus));
    EXPECT_EQ(*m.find(0, 1), 5.0);
    auto min = [](double a, double b) { return std::min(a, b); };
    m.insert_or_add(0, 1, 1.0, min);
    EXPECT_EQ(*m.find(0, 1), 1.0);
}

TEST(DynamicMatrix, EraseSwapsKeepRowConsistent) {
    DynamicMatrix<int> m(1, 100);
    for (index_t j = 0; j < 20; ++j) m.insert_or_assign(0, j, static_cast<int>(j));
    EXPECT_TRUE(m.erase(0, 0));
    EXPECT_FALSE(m.erase(0, 0));
    EXPECT_EQ(m.nnz(), 19u);
    for (index_t j = 1; j < 20; ++j) {
        ASSERT_NE(m.find(0, j), nullptr) << j;
        EXPECT_EQ(*m.find(0, j), static_cast<int>(j));
    }
}

TEST(DynamicMatrix, LongRowsBuildHashIndex) {
    // Cross the kIndexThreshold boundary and verify lookups stay correct.
    DynamicMatrix<int> m(1, 10'000);
    for (index_t j = 0; j < 1'000; ++j) m.insert_or_assign(0, j * 7, 1);
    EXPECT_EQ(m.row_size(0), 1'000u);
    for (index_t j = 0; j < 1'000; ++j) {
        EXPECT_TRUE(m.contains(0, j * 7));
        EXPECT_FALSE(m.contains(0, j * 7 + 1));
    }
}

TEST(DynamicMatrix, ToDcsrPreservesEntries) {
    DynamicMatrix<double> m(5, 5);
    m.insert_or_assign(4, 0, 1.0);
    m.insert_or_assign(0, 4, 2.0);
    m.insert_or_assign(2, 2, 3.0);
    auto d = m.to_dcsr();
    EXPECT_EQ(d.row_count(), 3u);
    EXPECT_EQ(d.row_id(0), 0);
    EXPECT_EQ(d.row_id(2), 4);
    EXPECT_EQ(d.nnz(), 3u);
}

TEST(DynamicMatrix, ClearResets) {
    DynamicMatrix<int> m(3, 3);
    m.insert_or_assign(1, 1, 1);
    m.clear();
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_FALSE(m.contains(1, 1));
    m.insert_or_assign(1, 1, 2);
    EXPECT_EQ(*m.find(1, 1), 2);
}

class DynamicMatrixRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicMatrixRandom, MatchesMapModelUnderMixedWorkload) {
    std::mt19937_64 rng(GetParam());
    const index_t rows = 40;
    const index_t cols = 60;
    DynamicMatrix<int> m(rows, cols);
    std::map<std::pair<index_t, index_t>, int> ref;
    for (int step = 0; step < 30'000; ++step) {
        const index_t i = static_cast<index_t>(rng() % rows);
        const index_t j = static_cast<index_t>(rng() % cols);
        switch (rng() % 4) {
            case 0: {
                m.insert_or_assign(i, j, step);
                ref[{i, j}] = step;
                break;
            }
            case 1: {
                auto plus = [](int a, int b) { return a + b; };
                m.insert_or_add(i, j, 1, plus);
                auto [it, fresh] = ref.try_emplace({i, j}, 1);
                if (!fresh) it->second += 1;
                break;
            }
            case 2: {
                EXPECT_EQ(m.erase(i, j), ref.erase({i, j}) > 0);
                break;
            }
            default: {
                const auto* p = m.find(i, j);
                auto it = ref.find({i, j});
                if (it == ref.end()) {
                    EXPECT_EQ(p, nullptr);
                } else {
                    ASSERT_NE(p, nullptr);
                    EXPECT_EQ(*p, it->second);
                }
            }
        }
    }
    EXPECT_EQ(m.nnz(), ref.size());
    // Full scan agrees as well.
    std::map<std::pair<index_t, index_t>, int> scanned;
    m.for_each([&](index_t i, index_t j, int v) { scanned[{i, j}] = v; });
    EXPECT_EQ(scanned, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicMatrixRandom,
                         ::testing::Values(1u, 2u, 3u, 99u));

TEST(DynamicMatrix, MemoryBytesGrowsWithContent) {
    DynamicMatrix<double> m(100, 100);
    const auto before = m.memory_bytes();
    for (index_t i = 0; i < 100; ++i)
        for (index_t j = 0; j < 20; ++j) m.insert_or_assign(i, j, 1.0);
    EXPECT_GT(m.memory_bytes(), before);
}

}  // namespace
