#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sparse/flat_map.hpp"

namespace {

using dsg::sparse::FlatMap;
using dsg::sparse::PairSet;

TEST(FlatMap, InsertFindErase) {
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    m.get_or_insert(5, 50);
    m.get_or_insert(6, 60);
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(5), nullptr);
    EXPECT_EQ(*m.find(5), 50);
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_TRUE(m.erase(5));
    EXPECT_FALSE(m.erase(5));
    EXPECT_EQ(m.find(5), nullptr);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GetOrInsertReturnsExisting) {
    FlatMap<int> m;
    m.get_or_insert(1, 10) = 11;
    EXPECT_EQ(m.get_or_insert(1, 999), 11);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ReinsertAfterEraseUsesTombstone) {
    FlatMap<int> m;
    for (int k = 0; k < 100; ++k) m.get_or_insert(k, k);
    for (int k = 0; k < 100; k += 2) EXPECT_TRUE(m.erase(k));
    EXPECT_EQ(m.size(), 50u);
    for (int k = 0; k < 100; k += 2) m.get_or_insert(k, -k);
    EXPECT_EQ(m.size(), 100u);
    for (int k = 0; k < 100; ++k) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), k % 2 == 0 ? -k : k);
    }
}

TEST(FlatMap, ClearKeepsWorking) {
    FlatMap<int> m;
    for (int k = 0; k < 64; ++k) m.get_or_insert(k, k);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(3), nullptr);
    m.get_or_insert(3, 33);
    EXPECT_EQ(*m.find(3), 33);
}

TEST(FlatMap, RandomizedAgainstStdMap) {
    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<std::int64_t> keys(0, 499);
    std::uniform_int_distribution<int> ops(0, 2);
    FlatMap<std::int64_t> fm;
    std::map<std::int64_t, std::int64_t> ref;
    for (int step = 0; step < 20'000; ++step) {
        const auto k = keys(rng);
        switch (ops(rng)) {
            case 0: {  // insert/overwrite
                fm.get_or_insert(k, 0) = step;
                ref[k] = step;
                break;
            }
            case 1: {  // erase
                EXPECT_EQ(fm.erase(k), ref.erase(k) > 0);
                break;
            }
            default: {  // lookup
                const auto* p = fm.find(k);
                const auto it = ref.find(k);
                if (it == ref.end()) {
                    EXPECT_EQ(p, nullptr);
                } else {
                    ASSERT_NE(p, nullptr);
                    EXPECT_EQ(*p, it->second);
                }
            }
        }
    }
    EXPECT_EQ(fm.size(), ref.size());
    std::size_t visited = 0;
    fm.for_each([&](std::int64_t k, std::int64_t v) {
        ++visited;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, ReserveAvoidsMisbehaviour) {
    FlatMap<int> m(1000);
    for (int k = 0; k < 1000; ++k) m.get_or_insert(k * 7, k);
    EXPECT_EQ(m.size(), 1000u);
    for (int k = 0; k < 1000; ++k) EXPECT_EQ(*m.find(k * 7), k);
}

TEST(PairSet, InsertContains) {
    PairSet s(100);
    s.insert(3, 7);
    s.insert(0, 0);
    s.insert(99, 99);
    EXPECT_TRUE(s.contains(3, 7));
    EXPECT_TRUE(s.contains(0, 0));
    EXPECT_TRUE(s.contains(99, 99));
    EXPECT_FALSE(s.contains(7, 3));
    EXPECT_EQ(s.size(), 3u);
}

TEST(PairSet, DuplicatesCollapse) {
    PairSet s(10);
    s.insert(1, 2);
    s.insert(1, 2);
    EXPECT_EQ(s.size(), 1u);
}

}  // namespace
