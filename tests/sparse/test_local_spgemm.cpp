// The local Gustavson kernel against a dense reference, over several
// semirings, operand layouts, masks, Bloom production and thread counts.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/dcsr_ops.hpp"
#include "sparse/local_spgemm.hpp"

namespace {

using namespace dsg::sparse;

std::vector<Triple<double>> random_triples(std::mt19937_64& rng, index_t rows,
                                           index_t cols, int count) {
    std::vector<Triple<double>> ts;
    for (int i = 0; i < count; ++i)
        ts.push_back({static_cast<index_t>(rng() % rows),
                      static_cast<index_t>(rng() % cols),
                      static_cast<double>(1 + rng() % 9)});
    combine_duplicates<PlusTimes<double>>(ts);
    return ts;
}

/// Dense reference multiply over a semiring.
template <typename SR>
std::map<std::pair<index_t, index_t>, double> dense_reference(
    const std::vector<Triple<double>>& a, const std::vector<Triple<double>>& b,
    index_t inner_offset = 0) {
    (void)inner_offset;
    std::map<std::pair<index_t, index_t>, double> out;
    for (const auto& ta : a)
        for (const auto& tb : b) {
            if (ta.col != tb.row) continue;
            const double term = SR::mul(ta.value, tb.value);
            auto [it, fresh] = out.try_emplace({ta.row, tb.col}, term);
            if (!fresh) it->second = SR::add(it->second, term);
        }
    return out;
}

template <typename V>
std::map<std::pair<index_t, index_t>, V> as_map(const Dcsr<V>& m) {
    std::map<std::pair<index_t, index_t>, V> out;
    m.for_each([&](index_t i, index_t j, const V& v) { out[{i, j}] = v; });
    return out;
}

TEST(LocalSpgemm, TinyHandComputedExample) {
    // A = [1 2; 0 3], B = [4 0; 5 6] -> C = [14 12; 15 18]
    auto A = Dcsr<double>::from_row_grouped(
        2, 2,
        std::vector<Triple<double>>{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}});
    auto B = Csr<double>::from_triples(
        2, 2,
        std::vector<Triple<double>>{{0, 0, 4}, {1, 0, 5}, {1, 1, 6}});
    auto C = spgemm<PlusTimes<double>>(2, 2, as_left(A), as_right(B));
    auto m = as_map(C);
    EXPECT_EQ((m[{0, 0}]), 14.0);
    EXPECT_EQ((m[{0, 1}]), 12.0);
    EXPECT_EQ((m[{1, 0}]), 15.0);
    EXPECT_EQ((m[{1, 1}]), 18.0);
}

TEST(LocalSpgemm, MinPlusShortestTwoHop) {
    // Path 0 -(1)-> 1 -(2)-> 2 and direct 0 -(9)-> 2 in A^2 terms.
    auto A = Dcsr<double>::from_row_grouped(
        3, 3, std::vector<Triple<double>>{{0, 1, 1}, {1, 2, 2}});
    auto C = spgemm<MinPlus<double>>(3, 3, as_left(A), as_right(A));
    auto m = as_map(C);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ((m[{0, 2}]), 3.0);  // 1 + 2
}

class SpgemmLayouts : public ::testing::TestWithParam<int> {};

TEST_P(SpgemmLayouts, RandomizedMatchesDenseReference) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
    const index_t n = 24, k = 18, m = 30;
    for (int trial = 0; trial < 10; ++trial) {
        auto ta = random_triples(rng, n, k, 80);
        auto tb = random_triples(rng, k, m, 80);
        auto expect = dense_reference<PlusTimes<double>>(ta, tb);

        auto a_dcsr = Dcsr<double>::from_row_grouped(n, k, ta);
        auto b_csr = Csr<double>::from_triples(k, m, tb);
        DynamicMatrix<double> a_dyn(n, k), b_dyn(k, m);
        for (const auto& t : ta) a_dyn.insert_or_assign(t.row, t.col, t.value);
        for (const auto& t : tb) b_dyn.insert_or_assign(t.row, t.col, t.value);
        auto b_dcsr = Dcsr<double>::from_row_grouped(k, m, tb);
        auto a_csr = Csr<double>::from_triples(n, k, ta);

        switch (GetParam()) {
            case 0:
                EXPECT_EQ(as_map(spgemm<PlusTimes<double>>(
                              n, m, as_left(a_dcsr), as_right(b_csr))),
                          expect);
                break;
            case 1:
                EXPECT_EQ(as_map(spgemm<PlusTimes<double>>(
                              n, m, as_left(a_dcsr), as_right(b_dyn))),
                          expect);
                break;
            case 2:
                EXPECT_EQ(as_map(spgemm<PlusTimes<double>>(
                              n, m, as_left(a_dyn), as_right(b_dcsr))),
                          expect);
                break;
            case 3:
                EXPECT_EQ(as_map(spgemm<PlusTimes<double>>(
                              n, m, as_left(a_csr), as_right(b_dyn))),
                          expect);
                break;
            default:
                EXPECT_EQ(as_map(spgemm<PlusTimes<double>>(
                              n, m, as_left(a_dyn), as_right(b_dyn))),
                          expect);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(LeftRightCombos, SpgemmLayouts,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(LocalSpgemm, MinPlusRandomizedMatchesReference) {
    std::mt19937_64 rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        auto ta = random_triples(rng, 20, 20, 60);
        auto tb = random_triples(rng, 20, 20, 60);
        auto a = Dcsr<double>::from_row_grouped(20, 20, ta);
        DynamicMatrix<double> b(20, 20);
        for (const auto& t : tb) b.insert_or_assign(t.row, t.col, t.value);
        EXPECT_EQ(as_map(spgemm<MinPlus<double>>(20, 20, as_left(a),
                                                 as_right(b))),
                  (dense_reference<MinPlus<double>>(ta, tb)));
    }
}

TEST(LocalSpgemm, MaskRestrictsOutput) {
    std::mt19937_64 rng(8);
    auto ta = random_triples(rng, 15, 15, 50);
    auto tb = random_triples(rng, 15, 15, 50);
    auto a = Dcsr<double>::from_row_grouped(15, 15, ta);
    auto b = Csr<double>::from_triples(15, 15, tb);

    auto full = dense_reference<PlusTimes<double>>(ta, tb);
    PairSet mask(15);
    // Keep roughly half of the would-be outputs.
    std::map<std::pair<index_t, index_t>, double> expect;
    bool keep = true;
    for (const auto& [coord, v] : full) {
        if (keep) {
            mask.insert(coord.first, coord.second);
            expect[coord] = v;
        }
        keep = !keep;
    }
    SpgemmOptions opts;
    opts.mask = &mask;
    auto c = spgemm<PlusTimes<double>>(15, 15, as_left(a), as_right(b), opts);
    EXPECT_EQ(as_map(c), expect);
}

TEST(LocalSpgemm, EmptyMaskYieldsEmptyResult) {
    auto a = Dcsr<double>::from_row_grouped(
        3, 3, std::vector<Triple<double>>{{0, 0, 1}});
    auto b = Csr<double>::from_triples(3, 3,
                                       std::vector<Triple<double>>{{0, 0, 1}});
    PairSet mask(3);
    SpgemmOptions opts;
    opts.mask = &mask;
    auto c = spgemm<PlusTimes<double>>(3, 3, as_left(a), as_right(b), opts);
    EXPECT_EQ(c.nnz(), 0u);
}

TEST(LocalSpgemm, PatternBitsIdentifyContributingInnerIndices) {
    // a(0, 5) * b(5, 2) and a(0, 70) * b(70, 2) both contribute to (0, 2):
    // bits (5 mod 64) and (70 mod 64) = 6 must be set.
    auto a = Dcsr<double>::from_row_grouped(
        1, 100, std::vector<Triple<double>>{{0, 5, 1.0}, {0, 70, 1.0}});
    auto b = Csr<double>::from_triples(
        100, 3, std::vector<Triple<double>>{{5, 2, 1.0}, {70, 2, 1.0}});
    auto pat = spgemm_pattern(1, 3, as_left(a), as_right(b));
    auto m = as_map(pat);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ((m[{0, 2}]), bloom_bit(5) | bloom_bit(70));
}

TEST(LocalSpgemm, InnerOffsetShiftsBloomBits) {
    auto a = Dcsr<double>::from_row_grouped(
        1, 4, std::vector<Triple<double>>{{0, 1, 1.0}});
    auto b = Csr<double>::from_triples(4, 1,
                                       std::vector<Triple<double>>{{1, 0, 1.0}});
    SpgemmOptions opts;
    opts.inner_offset = 10;  // local k=1 is global k=11
    auto pat = spgemm_pattern(1, 1, as_left(a), as_right(b), opts);
    EXPECT_EQ((as_map(pat)[{0, 0}]), bloom_bit(11));
}

TEST(LocalSpgemm, WithBloomMatchesPlainValuesAndPattern) {
    std::mt19937_64 rng(21);
    auto ta = random_triples(rng, 12, 12, 40);
    auto tb = random_triples(rng, 12, 12, 40);
    auto a = Dcsr<double>::from_row_grouped(12, 12, ta);
    auto b = Csr<double>::from_triples(12, 12, tb);
    auto vb = spgemm_with_bloom<PlusTimes<double>>(12, 12, as_left(a),
                                                   as_right(b));
    auto [values, bits] = split_value_bits(vb);
    EXPECT_EQ(as_map(values), (dense_reference<PlusTimes<double>>(ta, tb)));
    EXPECT_EQ(as_map(bits),
              as_map(spgemm_pattern(12, 12, as_left(a), as_right(b))));
}

class SpgemmThreads : public ::testing::TestWithParam<int> {};

TEST_P(SpgemmThreads, ParallelMatchesSequential) {
    std::mt19937_64 rng(31);
    dsg::par::ThreadPool pool(GetParam());
    for (int trial = 0; trial < 5; ++trial) {
        auto ta = random_triples(rng, 64, 48, 500);
        auto tb = random_triples(rng, 48, 64, 500);
        auto a = Dcsr<double>::from_row_grouped(64, 48, ta);
        auto b = Csr<double>::from_triples(48, 64, tb);
        auto seq = spgemm<PlusTimes<double>>(64, 64, as_left(a), as_right(b));
        SpgemmOptions opts;
        opts.pool = &pool;
        auto par =
            spgemm<PlusTimes<double>>(64, 64, as_left(a), as_right(b), opts);
        EXPECT_EQ(as_map(par), as_map(seq));
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpgemmThreads, ::testing::Values(2, 3, 8));

TEST(LocalSpgemm, EmptyOperands) {
    Dcsr<double> a(10, 10);
    Csr<double> b(10, 10);
    auto c = spgemm<PlusTimes<double>>(10, 10, as_left(a), as_right(b));
    EXPECT_EQ(c.nnz(), 0u);
}

}  // namespace
