// Algebraic laws of the bundled semirings, checked on randomized values —
// the kernels silently assume these (associativity for tree reductions,
// annihilation of zero for structural-zero semantics).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sparse/semiring.hpp"
#include "sparse/types.hpp"

namespace {

using namespace dsg::sparse;

template <typename SR>
void check_laws(const std::vector<typename SR::value_type>& samples) {
    using T = typename SR::value_type;
    const T zero = SR::zero();
    for (const T& a : samples) {
        // Additive identity.
        EXPECT_EQ(SR::add(a, zero), a);
        EXPECT_EQ(SR::add(zero, a), a);
        // Multiplicative annihilation by zero (up to NaN-free domains).
        const T za = SR::mul(zero, a);
        EXPECT_EQ(SR::add(za, SR::mul(a, zero)), za);
        for (const T& b : samples) {
            // Commutativity of addition (all bundled semirings have it).
            EXPECT_EQ(SR::add(a, b), SR::add(b, a));
            for (const T& c : samples) {
                // Associativity of both operations.
                EXPECT_EQ(SR::add(SR::add(a, b), c), SR::add(a, SR::add(b, c)));
                EXPECT_EQ(SR::mul(SR::mul(a, b), c), SR::mul(a, SR::mul(b, c)));
                // Distributivity: a*(b+c) == a*b + a*c.
                EXPECT_EQ(SR::mul(a, SR::add(b, c)),
                          SR::add(SR::mul(a, b), SR::mul(a, c)));
            }
        }
    }
}

TEST(Semiring, MinPlusLaws) {
    check_laws<MinPlus<double>>({0.0, 1.5, 7.0, 100.25, -3.0});
}

TEST(Semiring, MaxPlusLaws) {
    check_laws<MaxPlus<double>>({0.0, 2.0, -8.5, 31.0});
}

TEST(Semiring, BoolOrAndLaws) { check_laws<BoolOrAnd>({0, 1}); }

TEST(Semiring, BitsOrLaws) {
    check_laws<BitsOr>({0ull, 1ull, 0xff00ff00ull, ~0ull});
}

TEST(Semiring, PlusTimesIntegerLaws) {
    check_laws<PlusTimes<long long>>({0, 1, -5, 17, 1000});
}

TEST(Semiring, PlusTimesRingProperties) {
    static_assert(PlusTimes<double>::is_ring);
    static_assert(!MinPlus<double>::is_ring);
    EXPECT_EQ(PlusTimes<double>::add(3.0, PlusTimes<double>::neg(3.0)), 0.0);
    EXPECT_EQ(PlusTimes<double>::one(), 1.0);
}

TEST(Semiring, MinPlusZeroIsInfinity) {
    EXPECT_TRUE(std::isinf(MinPlus<double>::zero()));
    EXPECT_GT(MinPlus<double>::zero(), 0.0);
    // zero annihilates multiplication: inf + x = inf.
    EXPECT_TRUE(std::isinf(
        MinPlus<double>::mul(MinPlus<double>::zero(), 5.0)));
    // one() is the multiplicative identity: 0 + x = x.
    EXPECT_EQ(MinPlus<double>::mul(MinPlus<double>::one(), 5.0), 5.0);
}

TEST(Semiring, BloomBitWrapsAt64) {
    EXPECT_EQ(bloom_bit(0), 1ull);
    EXPECT_EQ(bloom_bit(63), 1ull << 63);
    EXPECT_EQ(bloom_bit(64), 1ull);
    EXPECT_EQ(bloom_bit(70), bloom_bit(6));
    // Every index maps to exactly one bit.
    for (int k = 0; k < 200; ++k)
        EXPECT_EQ(__builtin_popcountll(bloom_bit(k)), 1);
}

}  // namespace
