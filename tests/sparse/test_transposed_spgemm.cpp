// The transposed-left local kernel (out = L^T R) against a dense reference.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sparse/coo.hpp"
#include "sparse/transposed_spgemm.hpp"

namespace {

using namespace dsg::sparse;

std::vector<Triple<double>> random_triples(std::mt19937_64& rng, index_t rows,
                                           index_t cols, int count) {
    std::vector<Triple<double>> ts;
    for (int i = 0; i < count; ++i)
        ts.push_back({static_cast<index_t>(rng() % rows),
                      static_cast<index_t>(rng() % cols),
                      static_cast<double>(1 + rng() % 9)});
    combine_duplicates<PlusTimes<double>>(ts);
    return ts;
}

template <typename SR>
std::map<std::pair<index_t, index_t>, double> reference_lt_r(
    const std::vector<Triple<double>>& l, const std::vector<Triple<double>>& r) {
    std::map<std::pair<index_t, index_t>, double> out;
    for (const auto& tl : l)
        for (const auto& tr : r) {
            if (tl.row != tr.row) continue;  // shared inner index t
            const double term = SR::mul(tl.value, tr.value);
            auto [it, fresh] = out.try_emplace({tl.col, tr.col}, term);
            if (!fresh) it->second = SR::add(it->second, term);
        }
    return out;
}

template <typename V>
std::map<std::pair<index_t, index_t>, V> as_map(const Dcsr<V>& m) {
    std::map<std::pair<index_t, index_t>, V> out;
    m.for_each([&](index_t i, index_t j, const V& v) { out[{i, j}] = v; });
    return out;
}

TEST(TransposedSpgemm, TinyHandComputed) {
    // L^T R with L rows = inner. L = [[1,2],[3,0]], R = [[5,0],[0,7]].
    // (L^T R)(u,v) = sum_t L(t,u) R(t,v).
    // (0,0): L(0,0)R(0,0)+L(1,0)R(1,0) = 5 + 0 = 5
    // (0,1): L(0,0)R(0,1)+L(1,0)R(1,1) = 0 + 21 = 21
    // (1,0): L(0,1)R(0,0)+L(1,1)R(1,0) = 10 + 0 = 10
    // (1,1): L(0,1)R(0,1)+L(1,1)R(1,1) = 0 + 0 = 0 (structurally absent)
    DynamicMatrix<double> L(2, 2);
    L.insert_or_assign(0, 0, 1);
    L.insert_or_assign(0, 1, 2);
    L.insert_or_assign(1, 0, 3);
    auto R = Dcsr<double>::from_row_grouped(
        2, 2, std::vector<Triple<double>>{{0, 0, 5}, {1, 1, 7}});
    auto C = spgemm_transposed_left<PlusTimes<double>>(2, 2, L, R);
    auto m = as_map(C);
    EXPECT_EQ((m[{0, 0}]), 5.0);
    EXPECT_EQ((m[{0, 1}]), 21.0);
    EXPECT_EQ((m[{1, 0}]), 10.0);
    // (1,1) got a structural contribution only if some term touched it: the
    // t=0 term L(0,1)*R(0,1) needs R(0,1) which is absent -> no entry.
    EXPECT_EQ(m.count({1, 1}), 0u);
}

class TransposedRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransposedRandom, MatchesDenseReferencePlusTimes) {
    std::mt19937_64 rng(GetParam());
    const index_t inner = 25, n = 20, m = 15;
    for (int trial = 0; trial < 8; ++trial) {
        auto tl = random_triples(rng, inner, n, 120);
        auto tr = random_triples(rng, inner, m, 40);  // hypersparse right
        DynamicMatrix<double> L(inner, n);
        for (const auto& t : tl) L.insert_or_assign(t.row, t.col, t.value);
        auto R = Dcsr<double>::from_row_grouped(inner, m, tr);
        auto C = spgemm_transposed_left<PlusTimes<double>>(n, m, L, R);
        EXPECT_EQ(as_map(C), reference_lt_r<PlusTimes<double>>(tl, tr));
    }
}

TEST_P(TransposedRandom, MatchesDenseReferenceMinPlus) {
    std::mt19937_64 rng(GetParam() + 100);
    const index_t inner = 18, n = 14, m = 14;
    auto tl = random_triples(rng, inner, n, 80);
    auto tr = random_triples(rng, inner, m, 30);
    DynamicMatrix<double> L(inner, n);
    for (const auto& t : tl) L.insert_or_assign(t.row, t.col, t.value);
    auto R = Dcsr<double>::from_row_grouped(inner, m, tr);
    auto C = spgemm_transposed_left<MinPlus<double>>(n, m, L, R);
    EXPECT_EQ(as_map(C), reference_lt_r<MinPlus<double>>(tl, tr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransposedRandom, ::testing::Values(1u, 7u, 13u));

TEST(TransposedSpgemm, EmptyRightGivesEmpty) {
    DynamicMatrix<double> L(5, 5);
    L.insert_or_assign(0, 0, 1);
    Dcsr<double> R(5, 5);
    auto C = spgemm_transposed_left<PlusTimes<double>>(5, 5, L, R);
    EXPECT_EQ(C.nnz(), 0u);
}

TEST(TransposedSpgemm, OutputRowsAreAscending) {
    std::mt19937_64 rng(3);
    auto tl = random_triples(rng, 30, 30, 200);
    auto tr = random_triples(rng, 30, 30, 60);
    DynamicMatrix<double> L(30, 30);
    for (const auto& t : tl) L.insert_or_assign(t.row, t.col, t.value);
    auto R = Dcsr<double>::from_row_grouped(30, 30, tr);
    auto C = spgemm_transposed_left<PlusTimes<double>>(30, 30, L, R);
    for (std::size_t r = 1; r < C.row_count(); ++r)
        EXPECT_LT(C.row_id(r - 1), C.row_id(r));
}

}  // namespace
