// Epoch-engine tests: collective epoch application, concurrent producers
// against a sequential reference (the suite the CI TSan job exercises),
// reader snapshots racing epoch application, and stats accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "common/grid_shapes.hpp"
#include "core/dist_test_utils.hpp"
#include "core/update_ops.hpp"
#include "par/comm.hpp"
#include "par/thread_pool.hpp"
#include "stream/epoch_engine.hpp"
#include "stream/workloads.hpp"

namespace {

using namespace dsg;
using test::CoordMap;
using SR = sparse::PlusTimes<double>;
using Engine = stream::EpochEngine<SR>;
using sparse::index_t;
using sparse::Triple;
using stream::OpKind;
using stream::StreamOp;
using dsg::test::GridCase;

constexpr int kRanks = 4;  // 2x2 grid

class EpochEngineG : public ::testing::TestWithParam<GridCase> {};

TEST_P(EpochEngineG, AppliesAllThreeKindsInOneEpoch) {
    const GridCase gc = GetParam();
    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        const index_t n = 64;
        core::DistDynamicMatrix<double> A(grid, n, n);

        // Each rank streams ops on its own disjoint row (row == rank), so
        // the expected state is independent of cross-rank apply order.
        const auto r = static_cast<index_t>(comm.rank());
        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.epoch_batch = 1 << 12;  // everything fits in one epoch
        Engine engine(A, cfg);
        auto& q = engine.queue();
        for (index_t c = 0; c < 10; ++c)
            ASSERT_TRUE(q.push({OpKind::Add, {r, c, 1.0}}));
        ASSERT_TRUE(q.push({OpKind::Add, {r, 0, 2.0}}));     // in-batch dup
        ASSERT_TRUE(q.push({OpKind::Merge, {r, 1, 9.5}}));   // overwrite
        ASSERT_TRUE(q.push({OpKind::Mask, {r, 2, 0.0}}));    // delete
        ASSERT_TRUE(q.push({OpKind::Mask, {r + 8, 63, 0.0}}));  // absent: noop
        q.close();

        engine.run();

        EXPECT_EQ(engine.stats().applied_epochs, 1u);
        EXPECT_EQ(engine.stats().local_ops, 14u);
        CoordMap expect;
        for (index_t rank = 0; rank < gc.p(); ++rank) {
            expect[{rank, 0}] = 3.0;  // 1 + the duplicate 2
            expect[{rank, 1}] = 9.5;  // merged
            for (index_t c = 3; c < 10; ++c) expect[{rank, c}] = 1.0;
        }
        test::expect_matches_exactly(A, expect);
    });
}

// The acceptance scenario: N producer threads per rank push concurrently
// while the engine applies epochs; ADD-only traffic commutes, so the final
// matrix must equal one collective application of the same tuples.
TEST_P(EpochEngineG, ConcurrentProducersMatchSequentialReference) {
    const GridCase gc = GetParam();
    constexpr int kProducers = 3;
    par::run_world(gc.p(), [&](par::Comm& comm) {
        core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
        const index_t n = 512;

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = n;
        wl.writes = 4'000;
        wl.seed = 900 + static_cast<std::uint64_t>(comm.rank());

        core::DistDynamicMatrix<double> A(grid, n, n);
        stream::EngineConfig cfg;
        cfg.comm_mode = gc.comm_mode;
        cfg.queue_capacity = 1 << 10;  // force many epochs + backpressure
        cfg.epoch_batch = 512;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        std::vector<std::thread> producers;
        for (int prod = 0; prod < kProducers; ++prod) {
            producers.emplace_back([&, prod] {
                stream::WorkloadProducer source(wl, prod);
                while (auto ev = source.next())
                    ASSERT_TRUE(engine.queue().push(ev->op));
                engine.queue().producer_done();
            });
        }
        engine.run();
        for (auto& t : producers) t.join();

        const auto& s = engine.stats();
        EXPECT_EQ(s.local_ops, static_cast<std::uint64_t>(kProducers) * wl.writes);
        EXPECT_EQ(s.local_ops, engine.queue().accepted());
        EXPECT_GE(s.applied_epochs, 2u) << "traffic should span many epochs";
        EXPECT_EQ(s.adds, s.local_ops);

        // Per-epoch log must account for exactly the drained total.
        std::uint64_t logged = 0;
        for (const auto& e : engine.epoch_log()) logged += e.drained;
        EXPECT_EQ(logged, s.local_ops);

        // Sequential reference: replay every producer's writes and apply
        // them in ONE collective batch.
        std::vector<Triple<double>> replay;
        for (int prod = 0; prod < kProducers; ++prod) {
            stream::WorkloadProducer source(wl, prod);
            for (const auto& op : source.remaining_writes())
                replay.push_back(op.tuple);
        }
        core::DistDynamicMatrix<double> B(grid, n, n);
        auto update = core::build_update_matrix(grid, n, n, replay);
        core::add_update<SR>(B, update);

        test::expect_matches_exactly(A, test::as_map(B.gather_global()));
    });
}

// Mixed op kinds across many epochs stay deterministic as long as no
// coordinate is written again after being merged or masked — the documented
// stream-ordering contract (ADDs, then MERGEs, then MASKs per epoch; queue
// order within each stream).
TEST(EpochEngine, MixedKindsAcrossEpochsMatchReference) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 2'048;
        core::DistDynamicMatrix<double> A(grid, n, n);

        const auto r = static_cast<index_t>(comm.rank());
        stream::EngineConfig cfg;
        cfg.queue_capacity = 128;  // backpressure against the apply path
        cfg.epoch_batch = 64;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        engine.queue().register_producer();

        // Coordinates (rank-disjoint rows): add 0..499, then merge 0..99,
        // then mask 100..199.
        std::thread producer([&] {
            auto coord = [&](index_t k) {
                return Triple<double>{r + kRanks * (k % 50), k / 50, 0.0};
            };
            for (index_t k = 0; k < 500; ++k) {
                auto t = coord(k);
                t.value = 1.0;
                ASSERT_TRUE(engine.queue().push({OpKind::Add, t}));
            }
            for (index_t k = 0; k < 100; ++k) {
                auto t = coord(k);
                t.value = 100.0 + static_cast<double>(k);
                ASSERT_TRUE(engine.queue().push({OpKind::Merge, t}));
            }
            for (index_t k = 100; k < 200; ++k)
                ASSERT_TRUE(engine.queue().push({OpKind::Mask, coord(k)}));
            engine.queue().producer_done();
        });
        engine.run();
        producer.join();

        CoordMap expect;
        for (index_t rank = 0; rank < kRanks; ++rank) {
            auto coord = [&](index_t k) {
                return std::make_pair(rank + kRanks * (k % 50), k / 50);
            };
            for (index_t k = 200; k < 500; ++k) expect[coord(k)] = 1.0;
            for (index_t k = 0; k < 100; ++k)
                expect[coord(k)] = 100.0 + static_cast<double>(k);
        }
        test::expect_matches_exactly(A, expect);
    });
}

TEST(EpochEngine, DeadlineTriggersEpochBeforeBatchIsReached) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 32;
        core::DistDynamicMatrix<double> A(grid, n, n);

        stream::EngineConfig cfg;
        cfg.epoch_batch = 1 << 20;  // unreachable: only the deadline fires
        cfg.epoch_deadline = std::chrono::milliseconds(20);
        Engine engine(A, cfg);
        if (comm.rank() == 0) {
            for (index_t k = 0; k < 10; ++k)
                ASSERT_TRUE(engine.queue().push({OpKind::Add, {k, k, 2.0}}));
        }

        EXPECT_TRUE(engine.pump());  // deadline epoch applies rank 0's ops
        EXPECT_EQ(engine.stats().applied_epochs, 1u);
        EXPECT_EQ(A.global_nnz(), 10u);

        engine.queue().close();
        while (engine.pump()) {
        }
        EXPECT_EQ(engine.stats().applied_epochs, 1u);
        EXPECT_EQ(A.global_nnz(), 10u);
    });
}

TEST(EpochEngine, SnapshotReadersRaceEpochApplication) {
    constexpr int kProducers = 2;
    constexpr int kReaders = 2;
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 256;
        core::DistDynamicMatrix<double> A(grid, n, n);

        stream::WorkloadConfig wl;
        wl.scenario = stream::Scenario::SustainedUniform;
        wl.n = n;
        wl.writes = 2'000;
        wl.seed = 4'000 + static_cast<std::uint64_t>(comm.rank());

        stream::EngineConfig cfg;
        cfg.epoch_batch = 256;
        cfg.epoch_deadline = std::chrono::milliseconds(2);
        Engine engine(A, cfg);
        for (int prod = 0; prod < kProducers; ++prod)
            engine.queue().register_producer();

        std::atomic<bool> stop{false};
        std::vector<std::thread> threads;
        for (int reader = 0; reader < kReaders; ++reader) {
            threads.emplace_back([&] {
                std::uint64_t last_version = 0;
                std::size_t last_nnz = 0;
                while (!stop.load()) {
                    engine.with_snapshot([&](auto snap) {
                        EXPECT_GE(snap.version(), last_version);
                        last_version = snap.version();
                        last_nnz = snap.local_nnz();
                        // Any probe must be answerable without racing apply.
                        (void)snap.contains(snap.shape().global_row(0),
                                            snap.shape().global_col(0));
                    });
                    std::this_thread::yield();
                }
                (void)last_nnz;
            });
        }
        for (int prod = 0; prod < kProducers; ++prod) {
            threads.emplace_back([&, prod] {
                stream::WorkloadProducer source(wl, prod);
                while (auto ev = source.next())
                    ASSERT_TRUE(engine.queue().push(ev->op));
                engine.queue().producer_done();
            });
        }
        engine.run();
        stop.store(true);
        for (auto& t : threads) t.join();

        // The final snapshot observes every applied epoch.
        const auto version = engine.with_snapshot(
            [](auto snap) { return snap.version(); });
        EXPECT_EQ(version, engine.stats().applied_epochs);
    });
}

TEST(EpochEngine, SingleRankGridRunsEveryScenario) {
    par::run_world(1, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 128;
        core::DistDynamicMatrix<double> A(grid, n, n);
        par::ThreadPool pool(2);  // exercise the pooled apply path too
        for (auto scenario : stream::all_scenarios()) {
            stream::WorkloadConfig wl;
            wl.scenario = scenario;
            wl.n = n;
            wl.writes = 1'000;
            wl.seed = 5 + static_cast<std::uint64_t>(scenario);

            stream::EngineConfig cfg;
            cfg.epoch_batch = 128;
            cfg.epoch_deadline = std::chrono::milliseconds(2);
            cfg.pool = &pool;
            Engine engine(A, cfg);
            engine.queue().register_producer();
            engine.queue().register_producer();

            std::vector<std::thread> producers;
            for (int prod = 0; prod < 2; ++prod) {
                producers.emplace_back([&, prod] {
                    stream::WorkloadProducer source(wl, prod);
                    while (auto ev = source.next()) {
                        if (ev->type == stream::Event::Type::Write) {
                            ASSERT_TRUE(engine.queue().push(ev->op));
                        } else if (ev->type == stream::Event::Type::Read) {
                            engine.with_snapshot([&](auto snap) {
                                return snap.contains(ev->op.tuple.row,
                                                     ev->op.tuple.col);
                            });
                        }
                    }
                    engine.queue().producer_done();
                });
            }
            engine.run();
            for (auto& t : producers) t.join();
            EXPECT_EQ(engine.stats().local_ops, 2u * wl.writes)
                << stream::scenario_name(scenario);
        }
        EXPECT_GT(A.global_nnz(), 0u);
        comm.barrier();
    });
}

TEST(EpochEngine, EmptyClosedStreamTerminatesWithoutApplying) {
    par::run_world(kRanks, [&](par::Comm& comm) {
        core::ProcessGrid grid(comm);
        const index_t n = 16;
        core::DistDynamicMatrix<double> A(grid, n, n);
        Engine engine(A);
        engine.queue().close();
        engine.run();
        EXPECT_EQ(engine.stats().applied_epochs, 0u);
        EXPECT_EQ(engine.stats().local_ops, 0u);
        EXPECT_EQ(A.global_nnz(), 0u);
    });
}

// The overlapped-WAL path (write-behind on a worker thread) must deliver
// the same delta stream and the same final matrix as the inline write-ahead
// path; the engine joins the worker before the next WAL point, so deltas
// arrive in version order even though they are written off-thread.
TEST_P(EpochEngineG, OverlapPersistMatchesInlineWal) {
    const GridCase gc = GetParam();
    auto run_one = [&](bool overlap) {
        std::vector<std::vector<stream::EpochDelta<double>>> wals(
            static_cast<std::size_t>(gc.p()));
        std::vector<CoordMap> finals(static_cast<std::size_t>(gc.p()));
        par::run_world(gc.p(), [&](par::Comm& comm) {
            core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
            const index_t n = 96;
            core::DistDynamicMatrix<double> A(grid, n, n);
            stream::EngineConfig cfg;
            cfg.comm_mode = gc.comm_mode;
            cfg.overlap_persist = overlap;
            cfg.epoch_batch = 32;
            cfg.epoch_deadline = std::chrono::milliseconds(1);
            Engine engine(A, cfg);
            auto& my_wal = wals[static_cast<std::size_t>(comm.rank())];
            engine.set_wal_hook([&my_wal](const stream::EpochDelta<double>& d) {
                my_wal.push_back(d);
            });
            const auto r = static_cast<index_t>(comm.rank());
            auto& q = engine.queue();
            std::mt19937_64 rng(7'000 + static_cast<std::uint64_t>(r));
            // Feed in chunks with a pump between them: the queue drains
            // whole, so several WAL points only happen across several pumps.
            for (index_t chunk = 0; chunk < 6; ++chunk) {
                for (index_t k = 0; k < 50; ++k) {
                    const index_t row =
                        r + static_cast<index_t>(gc.p()) * (k % 16);
                    ASSERT_TRUE(q.push(
                        {OpKind::Add,
                         {row, static_cast<index_t>(rng() % 96),
                          1.0 + static_cast<double>(k % 7)}}));
                }
                engine.pump();
            }
            q.close();
            engine.run();
            EXPECT_GE(engine.stats().applied_epochs, 2u);
            finals[static_cast<std::size_t>(comm.rank())] =
                test::as_map(A.gather_global());
        });
        return std::pair(std::move(wals), std::move(finals));
    };
    auto [wal_inline, final_inline] = run_one(false);
    auto [wal_overlap, final_overlap] = run_one(true);
    EXPECT_EQ(final_inline, final_overlap);
    ASSERT_EQ(wal_inline.size(), wal_overlap.size());
    for (std::size_t r = 0; r < wal_inline.size(); ++r) {
        ASSERT_EQ(wal_inline[r].size(), wal_overlap[r].size()) << "rank " << r;
        for (std::size_t e = 0; e < wal_inline[r].size(); ++e) {
            const auto& a = wal_inline[r][e];
            const auto& b = wal_overlap[r][e];
            EXPECT_EQ(a.version, b.version);
            auto tuples_equal = [](const std::vector<Triple<double>>& x,
                                   const std::vector<Triple<double>>& y) {
                if (x.size() != y.size()) return false;
                for (std::size_t i = 0; i < x.size(); ++i)
                    if (x[i].row != y[i].row || x[i].col != y[i].col ||
                        x[i].value != y[i].value)
                        return false;
                return true;
            };
            EXPECT_TRUE(tuples_equal(a.adds, b.adds));
            EXPECT_TRUE(tuples_equal(a.merges, b.merges));
            EXPECT_TRUE(tuples_equal(a.masks, b.masks));
        }
    }
}

// Streaming the same ops through engines in sync and async comm mode must
// produce bit-identical matrices: the async build path posts the same
// exchange and applies in the same order.
TEST_P(EpochEngineG, AsyncCommIsBitIdenticalToSync) {
    const GridCase gc = GetParam();
    auto run_one = [&](par::CommMode mode) {
        CoordMap out;
        par::run_world(gc.p(), [&](par::Comm& comm) {
            core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
            const index_t n = 128;
            core::DistDynamicMatrix<double> A(grid, n, n);
            stream::EngineConfig cfg;
            cfg.comm_mode = mode;
            cfg.epoch_batch = 64;
            cfg.epoch_deadline = std::chrono::milliseconds(1);
            Engine engine(A, cfg);
            auto& q = engine.queue();
            std::mt19937_64 rng(8'000 + static_cast<std::uint64_t>(comm.rank()));
            for (int k = 0; k < 400; ++k)
                ASSERT_TRUE(q.push(
                    {OpKind::Add,
                     {static_cast<index_t>(rng() % 128),
                      static_cast<index_t>(rng() % 128),
                      static_cast<double>(rng() % 97) / 8.0}}));
            q.close();
            engine.run();
            auto global = A.gather_global();  // collective: all ranks call
            if (comm.rank() == 0) out = test::as_map(global);
            comm.barrier();
        });
        return out;
    };
    EXPECT_EQ(run_one(par::CommMode::Sync), run_one(par::CommMode::Async));
}

INSTANTIATE_TEST_SUITE_P(GridShapes, EpochEngineG,
                         ::testing::ValuesIn(dsg::test::grid_shape_cases()),
                         dsg::test::grid_case_name);

// Acceptance: all nine workload scenarios produce a bit-identical matrix in
// sync and async comm mode, on a rectangular 2x3 grid. Epoch boundaries are
// pinned (chunked pushes with a pump per chunk — the queue drains whole) so
// both runs apply the identical epoch sequence; any divergence is then the
// comm schedule's fault alone.
TEST(EpochEngine, AsyncMatchesSyncOnEveryScenario) {
    const GridCase gc{2, 3};
    for (auto scenario : stream::all_scenarios()) {
        auto run_one = [&](par::CommMode mode) {
            CoordMap out;
            par::run_world(gc.p(), [&](par::Comm& comm) {
                core::ProcessGrid grid = dsg::test::make_grid(comm, gc);
                const index_t n = 128;
                core::DistDynamicMatrix<double> A(grid, n, n);

                // Deterministic op stream: every scenario yields exactly
                // wl.writes write events per producer.
                stream::WorkloadConfig wl;
                wl.scenario = scenario;
                wl.n = n;
                wl.writes = 600;
                wl.seed = 40 + static_cast<std::uint64_t>(comm.rank());
                std::vector<StreamOp<double>> ops;
                stream::WorkloadProducer source(wl, 0);
                while (auto ev = source.next())
                    if (ev->type == stream::Event::Type::Write)
                        ops.push_back(ev->op);
                ASSERT_EQ(ops.size(), wl.writes);

                stream::EngineConfig cfg;
                cfg.comm_mode = mode;
                cfg.epoch_batch = 64;
                cfg.epoch_deadline = std::chrono::milliseconds(1);
                Engine engine(A, cfg);
                auto& q = engine.queue();
                std::size_t fed = 0;
                while (fed < ops.size()) {
                    const std::size_t end =
                        std::min(fed + 100, ops.size());
                    for (; fed < end; ++fed) ASSERT_TRUE(q.push(ops[fed]));
                    engine.pump();  // collective
                }
                q.close();
                engine.run();

                auto global = A.gather_global();  // collective: all ranks
                if (comm.rank() == 0) out = test::as_map(global);
                comm.barrier();
            });
            return out;
        };
        EXPECT_EQ(run_one(par::CommMode::Sync), run_one(par::CommMode::Async))
            << stream::scenario_name(scenario);
    }
}

}  // namespace
