#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "stream/update_queue.hpp"

namespace {

using dsg::sparse::index_t;
using dsg::stream::OpKind;
using dsg::stream::StreamOp;
using dsg::stream::UpdateQueue;
using namespace std::chrono_literals;

StreamOp<double> op(index_t row, index_t col, double value = 1.0,
                    OpKind kind = OpKind::Add) {
    return {kind, {row, col, value}};
}

TEST(UpdateQueue, DrainsInFifoOrder) {
    UpdateQueue<double> q(16);
    for (index_t k = 0; k < 10; ++k) ASSERT_TRUE(q.push(op(k, k)));
    EXPECT_EQ(q.size(), 10u);

    std::vector<StreamOp<double>> out;
    EXPECT_EQ(q.drain(out), 10u);
    ASSERT_EQ(out.size(), 10u);
    for (index_t k = 0; k < 10; ++k) EXPECT_EQ(out[static_cast<std::size_t>(k)], op(k, k));
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.accepted(), 10u);
}

TEST(UpdateQueue, DrainAppendsAcrossWrapAround) {
    UpdateQueue<double> q(4);
    std::vector<StreamOp<double>> out;
    // Fill, half-drain, refill: forces the ring to wrap.
    for (index_t k = 0; k < 4; ++k) ASSERT_TRUE(q.push(op(k, 0)));
    q.drain(out);
    for (index_t k = 4; k < 8; ++k) ASSERT_TRUE(q.push(op(k, 0)));
    q.drain(out);
    ASSERT_EQ(out.size(), 8u);
    for (index_t k = 0; k < 8; ++k) EXPECT_EQ(out[static_cast<std::size_t>(k)].tuple.row, k);
}

TEST(UpdateQueue, TryPushRefusesWhenFull) {
    UpdateQueue<double> q(2);
    EXPECT_TRUE(q.try_push(op(0, 0)));
    EXPECT_TRUE(q.try_push(op(1, 1)));
    EXPECT_FALSE(q.try_push(op(2, 2)));

    std::vector<StreamOp<double>> out;
    q.drain(out);
    EXPECT_TRUE(q.try_push(op(3, 3)));
}

TEST(UpdateQueue, PushBlocksOnBackpressureUntilDrained) {
    UpdateQueue<double> q(4);
    for (index_t k = 0; k < 4; ++k) ASSERT_TRUE(q.push(op(k, 0)));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(op(99, 0)));  // must block: queue is full
        pushed.store(true);
    });
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(pushed.load());

    std::vector<StreamOp<double>> out;
    q.drain(out);
    producer.join();
    EXPECT_TRUE(pushed.load());
    out.clear();
    q.drain(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].tuple.row, 99);
}

TEST(UpdateQueue, CloseRejectsPushesButKeepsBufferedOps) {
    UpdateQueue<double> q(8);
    ASSERT_TRUE(q.push(op(1, 1)));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.exhausted());  // one op still buffered
    EXPECT_FALSE(q.push(op(2, 2)));
    EXPECT_FALSE(q.try_push(op(2, 2)));

    std::vector<StreamOp<double>> out;
    EXPECT_EQ(q.drain(out), 1u);
    EXPECT_TRUE(q.exhausted());
}

TEST(UpdateQueue, CloseUnblocksWaitingProducer) {
    UpdateQueue<double> q(1);
    ASSERT_TRUE(q.push(op(0, 0)));
    std::thread producer([&] { EXPECT_FALSE(q.push(op(1, 1))); });
    std::this_thread::sleep_for(10ms);
    q.close();
    producer.join();
}

TEST(UpdateQueue, ProducerTokensCloseWhenLastFinishes) {
    UpdateQueue<double> q(8);
    q.register_producer();
    q.register_producer();
    q.producer_done();
    EXPECT_FALSE(q.closed());
    q.producer_done();
    EXPECT_TRUE(q.closed());
}

TEST(UpdateQueue, WaitReadyReturnsOnBatchCloseOrDeadline) {
    UpdateQueue<double> q(16);
    // Deadline path: nothing arrives.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(q.wait_ready(4, 30ms), 0u);
    EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);

    // Batch path: a producer fills it past the threshold.
    std::thread producer([&] {
        for (index_t k = 0; k < 4; ++k) ASSERT_TRUE(q.push(op(k, 0)));
    });
    EXPECT_GE(q.wait_ready(4, 10s), 4u);
    producer.join();

    // Close path: wakes immediately regardless of the deadline.
    q.close();
    std::vector<StreamOp<double>> out;
    q.drain(out);
    EXPECT_EQ(q.wait_ready(1000, 10s), 0u);
}

TEST(UpdateQueue, WaitReadyClampsThresholdToCapacity) {
    UpdateQueue<double> q(4);
    std::thread producer([&] {
        for (index_t k = 0; k < 4; ++k) ASSERT_TRUE(q.push(op(k, 0)));
    });
    // A threshold above capacity must trigger once the ring is full instead
    // of stalling for the whole deadline.
    EXPECT_EQ(q.wait_ready(1'000'000, 10s), 4u);
    producer.join();
}

TEST(UpdateQueue, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
    constexpr int kProducers = 4;
    constexpr index_t kOpsEach = 2'000;
    UpdateQueue<double> q(64);  // much smaller than the traffic: backpressure
    for (int prod = 0; prod < kProducers; ++prod) q.register_producer();

    std::vector<std::thread> producers;
    for (int prod = 0; prod < kProducers; ++prod) {
        producers.emplace_back([&, prod] {
            for (index_t k = 0; k < kOpsEach; ++k)
                ASSERT_TRUE(q.push(op(static_cast<index_t>(prod), k)));
            q.producer_done();
        });
    }

    // Single consumer drains until the queue is exhausted.
    std::vector<StreamOp<double>> out;
    while (!q.exhausted()) {
        q.wait_ready(32, 5ms);
        q.drain(out);
    }
    for (auto& t : producers) t.join();

    ASSERT_EQ(out.size(), static_cast<std::size_t>(kProducers) * kOpsEach);
    // Each producer's ops appear as an in-order subsequence.
    std::vector<index_t> next_seq(kProducers, 0);
    for (const auto& o : out) {
        const auto prod = static_cast<std::size_t>(o.tuple.row);
        ASSERT_LT(prod, static_cast<std::size_t>(kProducers));
        EXPECT_EQ(o.tuple.col, next_seq[prod]);
        ++next_seq[prod];
    }
    for (int prod = 0; prod < kProducers; ++prod)
        EXPECT_EQ(next_seq[static_cast<std::size_t>(prod)], kOpsEach);
}

}  // namespace
