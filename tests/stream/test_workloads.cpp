#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "stream/workloads.hpp"

namespace {

using dsg::sparse::index_t;
using dsg::stream::Event;
using dsg::stream::OpKind;
using dsg::stream::Scenario;
using dsg::stream::StreamOp;
using dsg::stream::WorkloadConfig;
using dsg::stream::WorkloadProducer;

std::vector<Event> collect(const WorkloadConfig& cfg, int producer_id) {
    WorkloadProducer p(cfg, producer_id);
    std::vector<Event> out;
    while (auto ev = p.next()) out.push_back(*ev);
    return out;
}

WorkloadConfig small_config(Scenario s) {
    WorkloadConfig cfg;
    cfg.scenario = s;
    cfg.n = 256;
    cfg.writes = 2'000;
    cfg.seed = 77;
    return cfg;
}

TEST(Workloads, EveryScenarioEmitsExactlyTheConfiguredWrites) {
    for (auto s : dsg::stream::all_scenarios()) {
        const auto events = collect(small_config(s), 0);
        std::size_t writes = 0;
        for (const auto& ev : events)
            if (ev.type == Event::Type::Write) ++writes;
        EXPECT_EQ(writes, small_config(s).writes) << dsg::stream::scenario_name(s);
    }
}

TEST(Workloads, DeterministicPerProducerAndDistinctAcrossProducers) {
    for (auto s : dsg::stream::all_scenarios()) {
        const auto cfg = small_config(s);
        const auto a0 = collect(cfg, 0);
        const auto a0_again = collect(cfg, 0);
        const auto a1 = collect(cfg, 1);
        ASSERT_EQ(a0.size(), a0_again.size());
        for (std::size_t k = 0; k < a0.size(); ++k) {
            EXPECT_EQ(static_cast<int>(a0[k].type), static_cast<int>(a0_again[k].type));
            EXPECT_EQ(a0[k].op, a0_again[k].op);
        }
        // Different producer ids must not replay the same stream.
        bool differs = a0.size() != a1.size();
        for (std::size_t k = 0; !differs && k < a0.size(); ++k)
            differs = !(a0[k].op == a1[k].op);
        EXPECT_TRUE(differs) << dsg::stream::scenario_name(s);
    }
}

TEST(Workloads, AllCoordinatesWithinBounds) {
    for (auto s : dsg::stream::all_scenarios()) {
        const auto cfg = small_config(s);
        for (const auto& ev : collect(cfg, 3)) {
            if (ev.type == Event::Type::Pause) continue;
            EXPECT_GE(ev.op.tuple.row, 0);
            EXPECT_LT(ev.op.tuple.row, cfg.n);
            EXPECT_GE(ev.op.tuple.col, 0);
            EXPECT_LT(ev.op.tuple.col, cfg.n);
        }
    }
}

TEST(Workloads, SustainedUniformIsAddOnlyWithoutPauses) {
    for (const auto& ev : collect(small_config(Scenario::SustainedUniform), 0)) {
        EXPECT_EQ(static_cast<int>(ev.type), static_cast<int>(Event::Type::Write));
        EXPECT_EQ(static_cast<int>(ev.op.kind), static_cast<int>(OpKind::Add));
    }
}

TEST(Workloads, BurstyPausesAtBurstBoundaries) {
    auto cfg = small_config(Scenario::Bursty);
    cfg.burst_len = 100;
    const auto events = collect(cfg, 0);
    std::size_t pauses = 0, writes_since_pause = 0;
    for (const auto& ev : events) {
        if (ev.type == Event::Type::Pause) {
            EXPECT_EQ(writes_since_pause, cfg.burst_len);
            writes_since_pause = 0;
            ++pauses;
        } else {
            ++writes_since_pause;
        }
    }
    EXPECT_EQ(pauses, cfg.writes / cfg.burst_len - 1);
}

TEST(Workloads, HotVertexSkewConcentratesRowsOnHotSet) {
    auto cfg = small_config(Scenario::HotVertexSkew);
    cfg.hot_fraction = 0.9;
    cfg.hot_rows = 8;
    std::size_t hot = 0, merges = 0, total = 0;
    for (const auto& ev : collect(cfg, 0)) {
        ++total;
        if (ev.op.tuple.row < cfg.hot_rows) ++hot;
        if (ev.op.kind == OpKind::Merge) ++merges;
    }
    // ~90% requested (plus uniform collisions); far above uniform's ~3%.
    EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.8);
    EXPECT_GT(merges, 0u);
    EXPECT_LT(merges, total);
}

TEST(Workloads, SlidingWindowOnlyMasksLiveInsertsAndHonorsWindow) {
    auto cfg = small_config(Scenario::SlidingWindowDelete);
    cfg.window = 64;
    std::multiset<std::pair<index_t, index_t>> live;
    std::size_t masks = 0;
    for (const auto& ev : collect(cfg, 0)) {
        const auto coord = std::make_pair(ev.op.tuple.row, ev.op.tuple.col);
        if (ev.op.kind == OpKind::Add) {
            live.insert(coord);
        } else {
            ASSERT_EQ(static_cast<int>(ev.op.kind), static_cast<int>(OpKind::Mask));
            auto it = live.find(coord);
            ASSERT_NE(it, live.end()) << "masked a coordinate never inserted";
            live.erase(it);
            ++masks;
        }
        EXPECT_LE(live.size(), cfg.window);
    }
    EXPECT_GT(masks, 0u);
}

TEST(Workloads, MixedReadWriteEmitsReadsThatDoNotConsumeWriteBudget) {
    auto cfg = small_config(Scenario::MixedReadWrite);
    cfg.read_fraction = 0.5;
    std::size_t reads = 0, writes = 0;
    for (const auto& ev : collect(cfg, 0)) {
        if (ev.type == Event::Type::Read)
            ++reads;
        else if (ev.type == Event::Type::Write)
            ++writes;
    }
    EXPECT_EQ(writes, cfg.writes);
    // P(read) = 0.5: reads should be in the same ballpark as writes.
    EXPECT_GT(reads, cfg.writes / 4);
}

TEST(Workloads, DegenerateKnobsAreClampedToSafeValues) {
    // Each of these would crash, divide by zero, or never terminate without
    // the constructor's clamping.
    auto sliding = small_config(Scenario::SlidingWindowDelete);
    sliding.window = 0;
    auto bursty = small_config(Scenario::Bursty);
    bursty.burst_len = 0;
    auto mixed = small_config(Scenario::MixedReadWrite);
    mixed.read_fraction = 1.0;
    auto hot = small_config(Scenario::HotVertexSkew);
    hot.hot_rows = 0;
    hot.hot_fraction = 2.0;
    for (const auto& cfg : {sliding, bursty, mixed, hot}) {
        std::size_t writes = 0;
        for (const auto& ev : collect(cfg, 0))
            if (ev.type == Event::Type::Write) ++writes;
        EXPECT_EQ(writes, cfg.writes)
            << dsg::stream::scenario_name(cfg.scenario);
    }
}

TEST(Workloads, ServingReadHeavyIsReadDominatedWithZipfSkewedKeys) {
    auto cfg = small_config(Scenario::ServingReadHeavy);
    cfg.writes = 1'000;
    cfg.zipf_skew = 4.0;
    std::size_t reads = 0, writes = 0, hot_reads = 0;
    for (const auto& ev : collect(cfg, 0)) {
        if (ev.type == Event::Type::Write) {
            ++writes;
            EXPECT_EQ(static_cast<int>(ev.op.kind),
                      static_cast<int>(OpKind::Add));
        } else {
            ASSERT_EQ(static_cast<int>(ev.type),
                      static_cast<int>(Event::Type::Read));
            ++reads;
            // Zipf skew concentrates read keys near 0: with skew 4 the top
            // 10% of the key space draws ~56% of reads (vs 10% uniform).
            if (ev.op.tuple.row < cfg.n / 10) ++hot_reads;
        }
    }
    EXPECT_EQ(writes, cfg.writes);
    // At least 9 reads per write on average (P(read) >= 0.9).
    EXPECT_GT(reads, writes * 6);
    EXPECT_GT(static_cast<double>(hot_reads) / static_cast<double>(reads),
              0.4);
}

TEST(Workloads, RemainingWritesMatchesReplayedEventStream) {
    const auto cfg = small_config(Scenario::HotVertexSkew);
    WorkloadProducer replay(cfg, 5);
    std::vector<StreamOp<double>> expected;
    while (auto ev = replay.next())
        if (ev->type == Event::Type::Write) expected.push_back(ev->op);

    WorkloadProducer collected(cfg, 5);
    const auto got = collected.remaining_writes();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], expected[k]);
}

}  // namespace
